//! Radix-vs-binary frontier equivalence.
//!
//! [`FrontierKind::Binary`] is the pre-radix engine: the same lazy
//! decrease-key heap with the same `(key bits, node)` ordering the old
//! `BinaryHeap<Reverse<(OrdF64, NodeId)>>` frontier used. These tests pin
//! the radix queue (including its mid-run fallback migration) against it:
//!
//! * identical settle order up to equal-key ties, with bit-identical
//!   distances, on random weighted graphs — including after PUA edge
//!   inserts and `drain_below_sink` (the paths that trigger the fallback),
//! * bit-identical final matching cost on random SSPA instances, cold,
//!   warm-started, and across `apply_delta` cache mutations.

use cca_flow::{
    solve_complete_bipartite_warm_ctx, solve_with_frontier, CacheDelta, DijkstraState,
    FlowCustomer, FlowGraph, FlowProvider, FrontierKind, NodeId, SspaCache,
};
use cca_geo::Point;
use proptest::prelude::*;

/// Random sparse digraph from an edge list over `n` nodes, plus one extra
/// edge-less node (id `n`) to use as an unreachable drain target. Costs are
/// non-negative, as Dijkstra requires.
fn build_graph(n: usize, edges: &[(usize, usize, u32, f64)]) -> FlowGraph {
    let mut g = FlowGraph::with_nodes(n + 1);
    for &(u, v, cap, cost) in edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            g.add_edge(u as NodeId, v as NodeId, cap.max(1), cost);
        }
    }
    g
}

/// Settles everything reachable from `source` and returns the settle trace
/// as `(key bits, node)` pairs in settle order.
fn settle_trace(g: &FlowGraph, source: NodeId, kind: FrontierKind) -> Vec<(u64, NodeId)> {
    let mut d = DijkstraState::with_frontier(kind);
    d.init(g, source);
    // The edge-less sentinel node is never settled, so this drains the
    // frontier completely.
    let unreachable = (g.num_nodes() - 1) as NodeId;
    assert_eq!(d.run_until(g, unreachable), None);
    d.settled_nodes()
        .iter()
        .map(|&v| (d.alpha(v).to_bits(), v))
        .collect()
}

/// Asserts two settle traces are equal up to reordering *within* runs of
/// equal keys: the key sequences must match bit-for-bit, and each maximal
/// equal-key run must settle the same set of nodes.
fn assert_traces_equivalent(radix: &[(u64, NodeId)], binary: &[(u64, NodeId)]) {
    let rk: Vec<u64> = radix.iter().map(|&(k, _)| k).collect();
    let bk: Vec<u64> = binary.iter().map(|&(k, _)| k).collect();
    assert_eq!(rk, bk, "settle key sequences diverged");
    let mut i = 0;
    while i < rk.len() {
        let mut j = i + 1;
        while j < rk.len() && rk[j] == rk[i] {
            j += 1;
        }
        let mut rn: Vec<NodeId> = radix[i..j].iter().map(|&(_, n)| n).collect();
        let mut bn: Vec<NodeId> = binary[i..j].iter().map(|&(_, n)| n).collect();
        rn.sort_unstable();
        bn.sort_unstable();
        assert_eq!(
            rn, bn,
            "equal-key tie group {i}..{j} settled different nodes"
        );
        i = j;
    }
}

fn providers_from(raw: &[(f64, f64, u32)]) -> Vec<FlowProvider> {
    raw.iter()
        .map(|&(x, y, cap)| FlowProvider {
            pos: Point::new(x, y),
            cap: cap.clamp(1, 6),
        })
        .collect()
}

fn customers_from(raw: &[(f64, f64, u32)]) -> Vec<FlowCustomer> {
    raw.iter()
        .map(|&(x, y, w)| FlowCustomer {
            pos: Point::new(x, y),
            weight: w.clamp(1, 3),
        })
        .collect()
}

proptest! {
    /// Cold Dijkstra: both frontiers settle the same nodes at bit-identical
    /// distances, in the same order up to equal-key ties.
    #[test]
    fn prop_settle_order_matches_up_to_ties(
        n in 2usize..24,
        edges in proptest::collection::vec(
            (0usize..24, 0usize..24, 1u32..4, 0.0..50.0f64), 1..80),
    ) {
        let g = build_graph(n, &edges);
        let radix = settle_trace(&g, 0, FrontierKind::Radix);
        let binary = settle_trace(&g, 0, FrontierKind::Binary);
        assert_traces_equivalent(&radix, &binary);
    }

    /// PUA edge insertion + drain: the resumable path that can break radix
    /// monotonicity (and trigger the binary fallback) still yields
    /// bit-identical distances on every node both engines reached.
    #[test]
    fn prop_pua_resume_matches_binary(
        n in 3usize..20,
        edges in proptest::collection::vec(
            (0usize..20, 0usize..20, 1u32..3, 0.0..50.0f64), 1..50),
        inserts in proptest::collection::vec(
            (0usize..20, 0usize..20, 0.0..50.0f64), 1..8),
    ) {
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for kind in [FrontierKind::Radix, FrontierKind::Binary] {
            let mut g = build_graph(n, &edges);
            let sink = (n - 1) as NodeId;
            let mut d = DijkstraState::with_frontier(kind);
            d.init(&g, 0);
            let reached = d.run_until(&g, sink).is_some();
            for &(u, v, cost) in &inserts {
                let (u, v) = (u % n, v % n);
                if u == v {
                    continue;
                }
                let e = g.add_edge(u as NodeId, v as NodeId, 1, cost);
                d.pua_insert_edge(&g, e);
                if reached && d.is_settled(sink) {
                    d.drain_below_sink(&g, sink);
                }
            }
            runs.push((0..n as NodeId).map(|v| d.alpha(v).to_bits()).collect());
        }
        prop_assert_eq!(&runs[0], &runs[1], "PUA-corrected distances diverged");
    }

    /// Cold SSPA: the radix engine's final matching cost is bit-identical to
    /// the binary (old) engine's on random weighted instances.
    #[test]
    fn prop_sspa_cost_bits_match_binary(
        praw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 1u32..6), 1..6),
        craw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 1u32..3), 1..12),
    ) {
        let providers = providers_from(&praw);
        let customers = customers_from(&craw);
        let (radix, rs) = solve_with_frontier(&providers, &customers, FrontierKind::Radix);
        let (binary, bs) = solve_with_frontier(&providers, &customers, FrontierKind::Binary);
        prop_assert_eq!(
            radix.cost.to_bits(), binary.cost.to_bits(),
            "cost diverged: {} vs {}", radix.cost, binary.cost);
        prop_assert_eq!(radix.size(), binary.size());
        prop_assert_eq!(rs.iterations, bs.iterations);
        // The binary engine performs no radix operations at all.
        prop_assert_eq!(bs.radix_fallbacks, 0);
    }

    /// Warm-started SSPA (the cache resume path) reproduces the binary
    /// engine's cost bit-for-bit: populate the cache with a radix solve,
    /// resume from it, and compare against a cold binary solve.
    #[test]
    fn prop_warm_start_cost_bits_match_binary(
        praw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 1u32..6), 1..5),
        craw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 1u32..3), 1..10),
    ) {
        let providers = providers_from(&praw);
        let customers = customers_from(&craw);
        let cache = SspaCache::new();
        solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
            .expect("no context, no abort");
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                .expect("no context, no abort");
        prop_assert!(stats.warm_started, "second solve must resume");
        let (binary, _) = solve_with_frontier(&providers, &customers, FrontierKind::Binary);
        prop_assert_eq!(
            warm.cost.to_bits(), binary.cost.to_bits(),
            "warm cost diverged: {} vs {}", warm.cost, binary.cost);
    }

    /// `apply_delta` cache mutations: after removing a customer from the
    /// cached state, the (possibly warm) re-solve of the modified instance
    /// still matches the binary engine's cost bit-for-bit — whether the
    /// delta preserved the warm state or invalidated it.
    #[test]
    fn prop_apply_delta_resolve_matches_binary(
        praw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 2u32..6), 1..5),
        craw in proptest::collection::vec(
            (0.0..1000.0f64, 0.0..1000.0f64, 1u32..3), 2..10),
        remove_at in 0usize..10,
    ) {
        let providers = providers_from(&praw);
        let mut customers = customers_from(&craw);
        let cache = SspaCache::new();
        solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
            .expect("no context, no abort");
        let j = remove_at % customers.len();
        let removed = customers.remove(j);
        cache.apply_delta(CacheDelta::RemoveCustomer {
            index: j,
            weight: removed.weight,
        });
        let (warm, _) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                .expect("no context, no abort");
        let (binary, _) = solve_with_frontier(&providers, &customers, FrontierKind::Binary);
        prop_assert_eq!(
            warm.cost.to_bits(), binary.cost.to_bits(),
            "post-delta cost diverged: {} vs {}", warm.cost, binary.cost);
    }
}
