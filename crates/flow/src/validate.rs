//! Validation oracles: matching validity, brute-force optima, and
//! cross-checking helpers used throughout the workspace's tests.

use cca_geo::Point;

use crate::hungarian::rectangular_assignment;
use crate::sspa::{required_flow, Assignment, FlowCustomer, FlowProvider};

/// Checks that `asg` is a *valid maximal* matching for the instance:
/// provider loads within capacity, customer loads within weight, total size
/// equal to `γ = min(Σ q.k, Σ p.w)`, and the reported cost consistent with
/// the pair distances.
pub fn validate_assignment(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    asg: &Assignment,
) -> Result<(), String> {
    let mut qload = vec![0u64; providers.len()];
    let mut pload = vec![0u64; customers.len()];
    let mut cost = 0.0;
    for &(qi, pj, units) in &asg.pairs {
        if qi >= providers.len() {
            return Err(format!("pair references unknown provider {qi}"));
        }
        if pj >= customers.len() {
            return Err(format!("pair references unknown customer {pj}"));
        }
        if units == 0 {
            return Err(format!("zero-unit pair ({qi}, {pj})"));
        }
        qload[qi] += u64::from(units);
        pload[pj] += u64::from(units);
        cost += f64::from(units) * providers[qi].pos.dist(&customers[pj].pos);
    }
    for (i, (&load, q)) in qload.iter().zip(providers).enumerate() {
        if load > u64::from(q.cap) {
            return Err(format!("provider {i} overloaded: {load} > {}", q.cap));
        }
    }
    for (j, (&load, p)) in pload.iter().zip(customers).enumerate() {
        if load > u64::from(p.weight) {
            return Err(format!("customer {j} overloaded: {load} > {}", p.weight));
        }
    }
    let gamma = required_flow(providers, customers);
    if asg.size() != gamma {
        return Err(format!("matching size {} != γ = {gamma}", asg.size()));
    }
    if (cost - asg.cost).abs() > 1e-6 * (1.0 + cost.abs()) {
        return Err(format!(
            "reported cost {} inconsistent with pairs ({cost})",
            asg.cost
        ));
    }
    Ok(())
}

/// Exhaustive optimal assignment cost for *tiny* instances (unit-weight
/// customers), by trying every assignment of customers to providers or to
/// "unmatched" and keeping the cheapest one of maximal size.
///
/// Complexity is O((|Q|+1)^|P|); keep |P| ≤ ~8.
pub fn brute_force_optimal_cost(providers: &[FlowProvider], customers: &[Point]) -> f64 {
    let gamma = {
        let cap: u64 = providers.iter().map(|q| u64::from(q.cap)).sum();
        cap.min(customers.len() as u64)
    };
    #[allow(clippy::too_many_arguments)]
    fn rec(
        providers: &[FlowProvider],
        customers: &[Point],
        j: usize,
        remaining: &mut [u32],
        matched: u64,
        cost: f64,
        gamma: u64,
        best: &mut f64,
    ) {
        if cost >= *best {
            return; // branch and bound
        }
        if j == customers.len() {
            if matched == gamma {
                *best = cost;
            }
            return;
        }
        // Option 1: leave customer j unmatched (only useful if γ can still
        // be reached).
        let left = (customers.len() - j - 1) as u64;
        let capacity_left: u64 = remaining.iter().map(|&c| u64::from(c)).sum();
        if matched + left.min(capacity_left) >= gamma {
            rec(
                providers,
                customers,
                j + 1,
                remaining,
                matched,
                cost,
                gamma,
                best,
            );
        }
        // Option 2: assign to any provider with spare capacity.
        for i in 0..providers.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                rec(
                    providers,
                    customers,
                    j + 1,
                    remaining,
                    matched + 1,
                    cost + providers[i].pos.dist(&customers[j]),
                    gamma,
                    best,
                );
                remaining[i] += 1;
            }
        }
    }
    let mut best = f64::INFINITY;
    let mut remaining: Vec<u32> = providers.iter().map(|q| q.cap).collect();
    rec(
        providers,
        customers,
        0,
        &mut remaining,
        0,
        0.0,
        gamma,
        &mut best,
    );
    if best.is_infinite() {
        0.0
    } else {
        best
    }
}

/// Optimal CCA cost via the Hungarian oracle: providers are expanded into
/// `q.k` unit slots and the rectangular assignment is solved with the
/// smaller side as rows. Only for small instances (dense matrix).
pub fn hungarian_optimal_cost(providers: &[FlowProvider], customers: &[Point]) -> f64 {
    let slots: Vec<Point> = providers
        .iter()
        .flat_map(|q| std::iter::repeat_n(q.pos, q.cap as usize))
        .collect();
    if slots.is_empty() || customers.is_empty() {
        return 0.0;
    }
    let cost_matrix: Vec<Vec<f64>> = if customers.len() <= slots.len() {
        customers
            .iter()
            .map(|p| slots.iter().map(|s| s.dist(p)).collect())
            .collect()
    } else {
        slots
            .iter()
            .map(|s| customers.iter().map(|p| s.dist(p)).collect())
            .collect()
    };
    rectangular_assignment(&cost_matrix).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sspa::{solve_complete_bipartite, unit_customers};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn q(x: f64, y: f64, cap: u32) -> FlowProvider {
        FlowProvider {
            pos: Point::new(x, y),
            cap,
        }
    }

    #[test]
    fn validate_accepts_sspa_output() {
        let providers = [q(0.0, 0.0, 2), q(50.0, 50.0, 3)];
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(48.0, 48.0),
            Point::new(60.0, 60.0),
        ];
        let customers = unit_customers(&pts);
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        validate_assignment(&providers, &customers, &asg).unwrap();
    }

    #[test]
    fn validate_rejects_overload() {
        let providers = [q(0.0, 0.0, 1)];
        let customers = unit_customers(&[Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let bad = Assignment {
            pairs: vec![(0, 0, 1), (0, 1, 1)],
            cost: 3.0,
        };
        let err = validate_assignment(&providers, &customers, &bad).unwrap_err();
        assert!(err.contains("overloaded"), "{err}");
    }

    #[test]
    fn validate_rejects_undersized_matching() {
        let providers = [q(0.0, 0.0, 2)];
        let customers = unit_customers(&[Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let bad = Assignment {
            pairs: vec![(0, 0, 1)],
            cost: 1.0,
        };
        let err = validate_assignment(&providers, &customers, &bad).unwrap_err();
        assert!(err.contains("size"), "{err}");
    }

    #[test]
    fn three_oracles_agree_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let nq = rng.random_range(1..=3);
            let np = rng.random_range(1..=7);
            let providers: Vec<FlowProvider> = (0..nq)
                .map(|_| {
                    q(
                        rng.random_range(0.0..100.0),
                        rng.random_range(0.0..100.0),
                        rng.random_range(1..=3),
                    )
                })
                .collect();
            let pts: Vec<Point> = (0..np)
                .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
                .collect();
            let customers = unit_customers(&pts);
            let (asg, _) = solve_complete_bipartite(&providers, &customers);
            validate_assignment(&providers, &customers, &asg).unwrap();
            let brute = brute_force_optimal_cost(&providers, &pts);
            let hung = hungarian_optimal_cost(&providers, &pts);
            assert!(
                (asg.cost - brute).abs() < 1e-6,
                "trial {trial}: sspa {} vs brute {brute}",
                asg.cost
            );
            assert!(
                (hung - brute).abs() < 1e-6,
                "trial {trial}: hungarian {hung} vs brute {brute}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_sspa_is_optimal(
            seed in 0u64..10_000,
            nq in 1usize..4,
            np in 1usize..7,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let providers: Vec<FlowProvider> = (0..nq)
                .map(|_| q(
                    rng.random_range(0.0..1000.0),
                    rng.random_range(0.0..1000.0),
                    rng.random_range(1..=4),
                ))
                .collect();
            let pts: Vec<Point> = (0..np)
                .map(|_| Point::new(
                    rng.random_range(0.0..1000.0),
                    rng.random_range(0.0..1000.0),
                ))
                .collect();
            let customers = unit_customers(&pts);
            let (asg, _) = solve_complete_bipartite(&providers, &customers);
            prop_assert!(validate_assignment(&providers, &customers, &asg).is_ok());
            let brute = brute_force_optimal_cost(&providers, &pts);
            prop_assert!((asg.cost - brute).abs() < 1e-6,
                         "sspa {} vs brute {}", asg.cost, brute);
        }
    }
}
