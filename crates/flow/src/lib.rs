//! Min-cost-flow substrate for the CCA reproduction.
//!
//! CCA reduces to minimum cost flow on a bipartite graph (§2.1). This crate
//! provides the machinery both the paper's baseline and its incremental
//! algorithms are built on:
//!
//! * [`graph::FlowGraph`] — incremental residual graph with paired arcs and
//!   node potentials (`τ`, §2.2). Arena-backed SoA layout: arcs live in flat
//!   `to`/`cost`/`res`/`next` columns threaded into intrusive per-node
//!   adjacency chains, so the relax loop streams a handful of columns and
//!   `add_edge` never heap-allocates per node,
//! * [`dijkstra::DijkstraState`] — Dijkstra over reduced costs, resumable
//!   with the Path Update Algorithm (PUA, Algorithm 5 / §3.4.1). The
//!   frontier is a monotone [`radix::RadixQueue`] on u64 distance bits with
//!   an automatic binary-heap fallback ([`dijkstra::FrontierKind`]),
//! * [`sspa`] — the full-graph Successive Shortest Path baseline
//!   (Algorithm 1) that Figure 8 benchmarks against,
//! * [`hungarian`] — the classical dense assignment solver [8, 11], used as
//!   an independent correctness oracle,
//! * [`validate`] — matching validators and brute-force optima for tests.
//!
//! The CPU-heavy loops are deadline-safe: the `*_ctx` entry points
//! ([`DijkstraState::run_until_ctx`], [`sspa::solve_complete_bipartite_ctx`],
//! [`hungarian::rectangular_assignment_ctx`]) poll a cooperative
//! [`cca_storage::QueryContext`] every few dozen inner-loop iterations, so a
//! flow solve on a large drained graph aborts from *inside* the iteration —
//! with a typed [`cca_storage::Aborted`] and (for SSPA) the committed
//! partial assignment — instead of overshooting its deadline until the next
//! page access.

pub mod dijkstra;
pub mod graph;
pub mod hungarian;
pub mod radix;
pub mod sspa;
pub mod validate;

pub use dijkstra::{DijkstraState, FrontierKind, HeapCounters, EPS};
pub use graph::{ArcId, FlowGraph, NodeId, NO_ARC};
pub use radix::RadixQueue;
pub use sspa::{
    required_flow, solve_complete_bipartite, solve_complete_bipartite_ctx,
    solve_complete_bipartite_profiled, solve_complete_bipartite_warm_ctx, solve_with_frontier,
    unit_customers, Assignment, CacheDelta, FlowAborted, FlowCustomer, FlowProvider, SspaCache,
    SspaState, SspaStats,
};
