//! Min-cost-flow substrate for the CCA reproduction.
//!
//! CCA reduces to minimum cost flow on a bipartite graph (§2.1). This crate
//! provides the machinery both the paper's baseline and its incremental
//! algorithms are built on:
//!
//! * [`graph::FlowGraph`] — incremental residual graph with paired arcs and
//!   node potentials (`τ`, §2.2),
//! * [`dijkstra::DijkstraState`] — Dijkstra over reduced costs, resumable
//!   with the Path Update Algorithm (PUA, Algorithm 5 / §3.4.1),
//! * [`sspa`] — the full-graph Successive Shortest Path baseline
//!   (Algorithm 1) that Figure 8 benchmarks against,
//! * [`hungarian`] — the classical dense assignment solver [8, 11], used as
//!   an independent correctness oracle,
//! * [`validate`] — matching validators and brute-force optima for tests.

pub mod dijkstra;
pub mod graph;
pub mod hungarian;
pub mod sspa;
pub mod validate;

pub use dijkstra::{DijkstraState, EPS};
pub use graph::{ArcId, FlowGraph, NodeId, NO_ARC};
pub use sspa::{
    required_flow, solve_complete_bipartite, unit_customers, Assignment, FlowCustomer,
    FlowProvider, SspaStats,
};
