//! Hungarian / Jonker-Volgenant rectangular assignment.
//!
//! The paper cites the Hungarian algorithm [8, 11] as the classical dense
//! solver that "becomes infeasible even for moderate-sized problems" (§2.1).
//! We implement the potentials-based O(n²·m) variant on an explicit cost
//! matrix: it serves as an *independent* correctness oracle for SSPA (the
//! two implementations share no code) and as the dense baseline it is.

use cca_storage::{Aborted, QueryContext};

use crate::dijkstra::poll;

/// Solves the rectangular assignment problem.
///
/// `cost` is an `n × m` matrix with `n ≤ m`; every row is assigned exactly
/// one distinct column so that the total cost is minimal. Returns
/// `(row_to_col, total_cost)`.
///
/// # Panics
/// Panics if `n > m` or rows have inconsistent lengths.
pub fn rectangular_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    rectangular_assignment_ctx(cost, None).expect("no context, no abort")
}

/// [`rectangular_assignment`] under a cooperative [`QueryContext`]: the
/// O(n²·m) augmenting loop polls the context every few dozen column scans
/// and unwinds with a typed [`Aborted`] on cancellation or an expired
/// deadline. The oracle's intermediate potentials are meaningless partially
/// applied, so — unlike the SSPA path — no partial assignment is returned;
/// callers treat an aborted oracle run as "no answer".
pub fn rectangular_assignment_ctx(
    cost: &[Vec<f64>],
    ctx: Option<&QueryContext>,
) -> Result<(Vec<usize>, f64), Aborted> {
    let n = cost.len();
    if n == 0 {
        return Ok((Vec::new(), 0.0));
    }
    let m = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");
    assert!(n <= m, "rows must not exceed columns ({n} > {m})");

    // 1-indexed arrays in the classic formulation; p[j] = row matched to
    // column j (0 = free).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    // Per-row scratch, hoisted out of the row loop and reset in place: the
    // augmenting inner loop performs no heap allocation at all.
    let mut minv = vec![inf; m + 1];
    let mut used = vec![false; m + 1];

    let mut until_poll = 0u32;
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        minv.iter_mut().for_each(|v| *v = inf);
        used.iter_mut().for_each(|u| *u = false);
        loop {
            poll(ctx, &mut until_poll)?;
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));
    Ok((row_to_col, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_identity_matrix_prefers_diagonal_zeros() {
        let cost = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let (asg, total) = rectangular_assignment(&cost);
        assert_eq!(asg, vec![0, 1, 2]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn classic_3x3_example() {
        // Known optimum 5 (1+3+1... check: rows->cols (0,1),(1,0),(2,2) =
        // 2+3+? ). Verify against exhaustive search instead.
        let cost = vec![
            vec![4.0, 2.0, 8.0],
            vec![3.0, 7.0, 6.0],
            vec![9.0, 5.0, 1.0],
        ];
        let (_, total) = rectangular_assignment(&cost);
        assert_eq!(total, brute_square(&cost));
    }

    #[test]
    fn rectangular_uses_cheapest_columns() {
        let cost = vec![vec![5.0, 1.0, 3.0, 4.0], vec![6.0, 2.0, 1.0, 9.0]];
        let (asg, total) = rectangular_assignment(&cost);
        assert_eq!(asg, vec![1, 2]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn single_row_picks_minimum() {
        let cost = vec![vec![9.0, 3.0, 7.0]];
        let (asg, total) = rectangular_assignment(&cost);
        assert_eq!(asg, vec![1]);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let (asg, total) = rectangular_assignment(&[]);
        assert!(asg.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn aborted_context_stops_the_oracle() {
        use cca_storage::AbortReason;
        let cost = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let ctx = QueryContext::new();
        ctx.cancel();
        let err = rectangular_assignment_ctx(&cost, Some(&ctx)).unwrap_err();
        assert_eq!(err.reason, AbortReason::Cancelled);
        // A clean context reproduces the plain solution.
        let clean = QueryContext::new();
        let (asg, total) = rectangular_assignment_ctx(&cost, Some(&clean)).unwrap();
        assert_eq!((asg, total), rectangular_assignment(&cost));
    }

    #[test]
    fn ties_still_produce_valid_assignment() {
        let cost = vec![vec![1.0; 4], vec![1.0; 4], vec![1.0; 4]];
        let (asg, total) = rectangular_assignment(&cost);
        assert_eq!(total, 3.0);
        let mut cols = asg.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3, "columns must be distinct");
    }

    /// Exhaustive optimum for square matrices (test oracle's oracle).
    fn brute_square(cost: &[Vec<f64>]) -> f64 {
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == cost.len() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for c in 0..cost[0].len() {
                if !used[c] {
                    used[c] = true;
                    best = best.min(cost[row][c] + rec(cost, row + 1, used));
                    used[c] = false;
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; cost[0].len()])
    }

    #[test]
    fn random_matrices_match_exhaustive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let n = rng.random_range(1..=6);
            let m = rng.random_range(n..=7);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.random_range(0.0..100.0)).collect())
                .collect();
            let (asg, total) = rectangular_assignment(&cost);
            // Validity.
            let mut used = vec![false; m];
            for (r, &c) in asg.iter().enumerate() {
                assert!(!used[c], "column reused in trial {trial}");
                used[c] = true;
                let _ = r;
            }
            // Optimality.
            let best = brute_square(&cost);
            assert!(
                (total - best).abs() < 1e-9,
                "trial {trial}: hungarian {total} vs brute {best}"
            );
        }
    }
}
