//! The full-graph Successive Shortest Path Algorithm (Algorithm 1).
//!
//! This is the paper's baseline (§2.2): build the *complete* bipartite flow
//! graph between `Q` and `P` in memory and run γ Dijkstra+augment
//! iterations. It is intentionally faithful to the baseline's weaknesses —
//! O(|Q|·|P|) edges — because Figure 8 measures exactly that. It doubles as
//! the ground-truth oracle for the incremental algorithms' tests.
//!
//! Customers may carry integer weights (> 1) so the same solver performs the
//! concise matching of the CA approximation, where customer representatives
//! have weight `g.w` (§4.2).

// `FlowAborted` carries the committed partial assignment plus the full
// `SspaStats` block by value; it crossed clippy's 128-byte Err threshold
// when the stats gained the solve-phase breakdown. The Ok variant
// `(Assignment, SspaStats)` is just as large, aborts are cold, and boxing
// would churn every public signature, so the lint buys nothing here.
#![allow(clippy::result_large_err)]

use std::time::Instant;

use cca_geo::Point;
use cca_storage::{AbortReason, QueryContext};

use crate::dijkstra::{DijkstraState, FrontierKind};
use crate::graph::{FlowGraph, NodeId};

/// A provider in a bipartite assignment problem: position + capacity.
#[derive(Clone, Copy, Debug)]
pub struct FlowProvider {
    pub pos: Point,
    pub cap: u32,
}

/// A customer: position + weight (1 for ordinary CCA customers).
#[derive(Clone, Copy, Debug)]
pub struct FlowCustomer {
    pub pos: Point,
    pub weight: u32,
}

/// The assignment produced by a solver: `(provider index, customer index,
/// units)` triples plus the total cost `Ψ(M) = Σ units · dist`.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    pub pairs: Vec<(usize, usize, u32)>,
    pub cost: f64,
}

impl Assignment {
    /// Total matched units (the matching size `|M|`).
    pub fn size(&self) -> u64 {
        self.pairs.iter().map(|&(_, _, u)| u64::from(u)).sum()
    }

    /// Units assigned per provider.
    pub fn provider_load(&self, num_providers: usize) -> Vec<u64> {
        let mut load = vec![0u64; num_providers];
        for &(q, _, u) in &self.pairs {
            load[q] += u64::from(u);
        }
        load
    }

    /// Units assigned per customer.
    pub fn customer_load(&self, num_customers: usize) -> Vec<u64> {
        let mut load = vec![0u64; num_customers];
        for &(_, p, u) in &self.pairs {
            load[p] += u64::from(u);
        }
        load
    }
}

/// The required flow `γ = min(Σ q.k, Σ p.w)` (§1, §2.1).
pub fn required_flow(providers: &[FlowProvider], customers: &[FlowCustomer]) -> u64 {
    let cap: u64 = providers.iter().map(|q| u64::from(q.cap)).sum();
    let w: u64 = customers.iter().map(|p| u64::from(p.weight)).sum();
    cap.min(w)
}

/// Statistics reported by [`solve_complete_bipartite`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SspaStats {
    /// Augmenting iterations (shortest-path searches) performed. Equals
    /// the installed flow for unit augmentation (= γ on completion); the
    /// bulk variant pushes the path bottleneck per search, so there it is
    /// typically far below γ.
    pub iterations: u64,
    /// Edges in the flow graph (|Q|·|P| + |Q| + |P| for the baseline).
    pub edges: u64,
    /// Nodes settled across all Dijkstra runs — the dominant work term a
    /// warm start shrinks (units resumed from the cache never search).
    pub settled: u64,
    /// Units installed from the cache before the first Dijkstra run
    /// (`iterations + warm_units` is the total flow on completion).
    pub warm_units: u64,
    /// True when the solve resumed from a verified cached state.
    pub warm_started: bool,
    /// Wall time inside the shortest-path searches (init + settle loop).
    pub settle_ns: u64,
    /// Wall time augmenting flow and updating potentials.
    pub augment_ns: u64,
    /// Wall time inside frontier-queue push/pop. Only populated by the
    /// profiled entry point ([`solve_complete_bipartite_profiled`]) — per-op
    /// timestamps are too expensive for the default hot path — and a subset
    /// of `settle_ns`.
    pub heap_ns: u64,
    /// Frontier (bucket-queue) pushes across all searches.
    pub heap_pushes: u64,
    /// Frontier pops across all searches (stale entries included).
    pub heap_pops: u64,
    /// Pushes that improved an already-queued node (lazy decrease-keys).
    pub decrease_keys: u64,
    /// Searches that migrated from the radix queue to the binary-heap
    /// fallback because a key went below the last popped minimum.
    pub radix_fallbacks: u64,
}

/// Shape key a cached state may apply to: `(|Q|, |P|, Σ q.k, Σ p.w)`. The
/// key is deliberately loose — the real guard is the reduced-cost check run
/// against the *current* instance's costs before a cached state is resumed,
/// so a colliding key from a different geometry is rejected there, never
/// trusted.
type CacheKey = (usize, usize, u64, u64);

/// The final primal-dual state of a completed solve: node potentials (in
/// the solver's fixed node order `s, t, Q…, P…`) plus the optimal
/// assignment's flow triples.
#[derive(Clone, Debug)]
struct CachedState {
    tau: Vec<f64>,
    pairs: Vec<(u32, u32, u32)>,
}

/// A publicly inspectable primal-dual state: the potentials of a completed
/// solve in node order `s, t, Q…, P…` plus its flow triples
/// `(provider, customer, units)`. Returned by [`SspaCache::state`] and
/// accepted by [`SspaCache::prime`], so an incremental engine can carry a
/// solve's certificate across instances (e.g. restrict a global solution to
/// a neighbourhood subproblem and resume there). A primed state is *never
/// trusted*: the resume path re-verifies the reduced-cost certificate
/// against the instance it is applied to, so a wrong state costs warm-start
/// rate, not correctness.
#[derive(Clone, Debug)]
pub struct SspaState {
    pub tau: Vec<f64>,
    pub pairs: Vec<(u32, u32, u32)>,
}

/// An incremental world change applied to a cached solve state via
/// [`SspaCache::apply_delta`], in the *solve order* of the instance the
/// entry was published for. Customer removal uses swap-with-last index
/// semantics (the last customer takes the removed one's index), so callers
/// maintaining a mirror ordering must apply the same swap.
#[derive(Clone, Copy, Debug)]
pub enum CacheDelta<'a> {
    /// Customer at solve-order `index` (weight `weight`) left the instance.
    RemoveCustomer { index: usize, weight: u32 },
    /// A customer of `weight` arrived at `pos`, appended at the end of the
    /// solve order. `providers` must be the instance's providers in solve
    /// order (needed to derive a potential for the new node).
    AddCustomer {
        pos: Point,
        weight: u32,
        providers: &'a [FlowProvider],
    },
    /// Provider `index`'s capacity changed from `old_cap` to `new_cap`.
    SetProviderCapacity {
        index: usize,
        old_cap: u32,
        new_cap: u32,
    },
    /// Provider `index` moved: every incident arc cost changed.
    MoveProvider { index: usize },
}

/// A cross-query warm-start cache for SSPA.
///
/// A completed solve publishes its final state — node potentials *and* the
/// optimal flow. The next solve of the same shape installs that state and
/// verifies SSPA's loop invariant against its own costs: every residual arc
/// must have non-negative reduced cost (§2.2), which is exactly the
/// certificate that the installed flow is minimum-cost *for its value*. If
/// the check passes the solve resumes with only `γ − cached` augmentations
/// left (zero for a repeated query); if it fails — different geometry under
/// a colliding shape key — the state is rolled back and the solve runs
/// cold. Either way the result is the exact optimum: a cache entry can only
/// save Dijkstra work, never change the answer.
///
/// Shared by reference across a batch's worker threads; the interior mutex
/// is held only to clone state in or out, never across a solve.
#[derive(Debug, Default)]
pub struct SspaCache {
    entry: std::sync::Mutex<Option<(CacheKey, CachedState)>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl SspaCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a solve resumed from a verified entry / ran cold,
    /// respectively. (A shape-key hit that fails the reduced-cost check
    /// counts as a miss: the cache did not help that solve.)
    pub fn hit_miss(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    fn record(&self, hit: bool) {
        use std::sync::atomic::Ordering::Relaxed;
        if hit {
            self.hits.fetch_add(1, Relaxed);
        } else {
            self.misses.fetch_add(1, Relaxed);
        }
    }

    fn load(&self, key: CacheKey) -> Option<CachedState> {
        let entry = self.entry.lock().expect("sspa cache poisoned");
        match entry.as_ref() {
            Some((k, state)) if *k == key => Some(state.clone()),
            _ => None,
        }
    }

    fn store(&self, key: CacheKey, state: CachedState) {
        *self.entry.lock().expect("sspa cache poisoned") = Some((key, state));
    }

    /// Drops the cached entry (the next solve through this cache runs cold).
    pub fn clear(&self) {
        *self.entry.lock().expect("sspa cache poisoned") = None;
    }

    /// A clone of the cached primal-dual state, if any.
    pub fn state(&self) -> Option<SspaState> {
        let entry = self.entry.lock().expect("sspa cache poisoned");
        entry.as_ref().map(|(_, s)| SspaState {
            tau: s.tau.clone(),
            pairs: s.pairs.clone(),
        })
    }

    /// Seeds the cache with an externally assembled state for the instance
    /// `(providers, customers)`, replacing any current entry. The state is
    /// installed under that instance's shape key and will be verified by the
    /// reduced-cost gate on the next solve — priming can only *enable* a
    /// warm resume, never corrupt a result.
    pub fn prime(&self, providers: &[FlowProvider], customers: &[FlowCustomer], state: SspaState) {
        self.store(
            cache_key(providers, customers),
            CachedState {
                tau: state.tau,
                pairs: state.pairs,
            },
        );
    }

    /// Evolves the cached state in place to track an incremental change to
    /// the world, so the *next* same-shaped solve can still resume warm
    /// instead of the key mismatching (or the certificate failing) after
    /// every event.
    ///
    /// Returns `true` when a certified entry survives the delta. When the
    /// change cannot be certified cheaply — a provider moved (all incident
    /// arc costs changed), an arrival undercuts the cached marginal cost, a
    /// capacity cut forces flow off a provider — the entry is dropped and
    /// `false` is returned: the next solve runs cold and republishes.
    ///
    /// Soundness never depends on this bookkeeping: the resume path
    /// re-verifies the full `rc ≥ 0` certificate against the current
    /// instance, so `apply_delta` only preserves (or gives up) the warm
    /// start. The certification arguments used here, per variant:
    ///
    /// * `RemoveCustomer` — an unmatched departure only removes residual
    ///   arcs and always survives. A matched departure frees source
    ///   capacity, re-exposing `s → q` with reduced cost `τ(q) − τ(s)`;
    ///   since `τ(s)` accumulates `α(t)` every augmentation it generally
    ///   dominates, so the entry survives only when the serving providers'
    ///   potentials still cover `τ(s)` (true while they keep residual
    ///   capacity, i.e. in the customer-surplus regime).
    /// * `AddCustomer` — the new node needs `τ(q) − d(q, p) ≤ τ(p) ≤ τ(t)`
    ///   for every provider `q`; when the interval is empty the arrival is
    ///   cheaper than the cached marginal and the flow is stale.
    /// * `SetProviderCapacity` — an increase re-exposes `s → q` (same bound
    ///   as above); a decrease that still covers the provider's cached load
    ///   only removes residual capacity. A cut below the load would have to
    ///   un-push flow, which breaks complementary slackness.
    /// * `MoveProvider` — every incident cost changed; nothing survives.
    pub fn apply_delta(&self, delta: CacheDelta<'_>) -> bool {
        let mut entry = self.entry.lock().expect("sspa cache poisoned");
        let Some((key, state)) = entry.as_mut() else {
            return false;
        };
        let (nq, np) = (key.0, key.1);
        let slack = crate::dijkstra::EPS * 100.0;
        let ok = match delta {
            CacheDelta::RemoveCustomer { index, weight } => {
                if index >= np {
                    false
                } else {
                    // Dropping the customer's flow re-exposes `s → q` on the
                    // providers that served it; the freed residual arc needs
                    // `τ(q) ≥ τ(s)`. When that fails, the remaining flow is
                    // genuinely not minimum-cost for its value (the freed
                    // slot may be cheaper to fill another way), so the entry
                    // cannot survive. An unmatched customer only removes
                    // arcs and always keeps the certificate.
                    let tau_s = state.tau[0];
                    let freed_breaks = state
                        .pairs
                        .iter()
                        .filter(|&&(_, p, _)| p as usize == index)
                        .any(|&(q, _, _)| state.tau[2 + q as usize] < tau_s - slack);
                    if freed_breaks {
                        false
                    } else {
                        let last = np - 1;
                        state.tau.swap_remove(2 + nq + index);
                        state.pairs.retain(|&(_, p, _)| p as usize != index);
                        for pair in &mut state.pairs {
                            if pair.1 as usize == last {
                                pair.1 = index as u32;
                            }
                        }
                        key.1 -= 1;
                        key.3 = key.3.saturating_sub(u64::from(weight));
                        true
                    }
                }
            }
            CacheDelta::AddCustomer {
                pos,
                weight,
                providers,
            } => {
                if providers.len() != nq {
                    false
                } else {
                    let tau_t = state.tau[1];
                    let lower = providers
                        .iter()
                        .enumerate()
                        .map(|(i, q)| state.tau[2 + i] - q.pos.dist(&pos))
                        .fold(0.0f64, f64::max);
                    if lower > tau_t + slack {
                        // The arrival beats the cached marginal: the flow
                        // is no longer min-cost for its value.
                        false
                    } else {
                        state.tau.push(lower.min(tau_t));
                        key.1 += 1;
                        key.3 += u64::from(weight);
                        true
                    }
                }
            }
            CacheDelta::SetProviderCapacity {
                index,
                old_cap,
                new_cap,
            } => {
                if index >= nq {
                    false
                } else {
                    let load: u64 = state
                        .pairs
                        .iter()
                        .filter(|&&(q, _, _)| q as usize == index)
                        .map(|&(_, _, u)| u64::from(u))
                        .sum();
                    let grows = new_cap > old_cap;
                    let freed_ok = state.tau[2 + index] >= state.tau[0] - slack;
                    if load > u64::from(new_cap) || (grows && !freed_ok) {
                        false
                    } else {
                        key.2 = key.2 - u64::from(old_cap) + u64::from(new_cap);
                        true
                    }
                }
            }
            CacheDelta::MoveProvider { .. } => false,
        };
        if !ok {
            *entry = None;
        }
        ok
    }
}

/// The shape key of an instance (shared by the solver and [`SspaCache::prime`]).
fn cache_key(providers: &[FlowProvider], customers: &[FlowCustomer]) -> CacheKey {
    (
        providers.len(),
        customers.len(),
        providers.iter().map(|q| u64::from(q.cap)).sum(),
        customers.iter().map(|p| u64::from(p.weight)).sum(),
    )
}

/// An SSPA solve cut short by its [`QueryContext`] (cancellation or an
/// expired deadline — the flow engine touches no pages, so I/O budgets
/// cannot trip here).
///
/// The partial state is exact: `partial` holds every unit whose augmenting
/// path fully committed before the abort (a valid, capacity-respecting
/// assignment of `stats.iterations` units), and the in-flight iteration's
/// search is discarded without mutating the flow.
#[derive(Clone, Debug)]
pub struct FlowAborted {
    pub reason: AbortReason,
    /// Units assigned by the iterations that completed before the abort.
    pub partial: Assignment,
    /// Measurements up to the abort (`iterations` = committed units).
    pub stats: SspaStats,
}

impl std::fmt::Display for FlowAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flow solve aborted ({}) after {} of γ iterations",
            self.reason, self.stats.iterations
        )
    }
}

impl std::error::Error for FlowAborted {}

/// Solves the CCA instance optimally with SSPA on the complete bipartite
/// graph.
///
/// Augments one unit per iteration as in Algorithm 1 (the paper performs
/// γ unit augmentations; a bottleneck variant is ablated in `cca-bench`).
pub fn solve_complete_bipartite(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
) -> (Assignment, SspaStats) {
    solve_complete_bipartite_ctx(providers, customers, None)
        .unwrap_or_else(|_| unreachable!("no context, no abort"))
}

/// [`solve_complete_bipartite`] under a cooperative [`QueryContext`].
///
/// The γ-iteration driver polls the context at every iteration head and the
/// inner Dijkstra polls it every few dozen settles, so a CPU-bound solve on
/// a large drained graph observes cancellation or an expired deadline from
/// *inside* the flow loop — no page access required — and unwinds with the
/// typed [`FlowAborted`] carrying the partial assignment built so far.
pub fn solve_complete_bipartite_ctx(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    ctx: Option<&QueryContext>,
) -> Result<(Assignment, SspaStats), FlowAborted> {
    solve_complete_bipartite_warm_ctx(providers, customers, ctx, None)
}

/// [`solve_complete_bipartite_ctx`] with an optional cross-query warm-start
/// cache.
///
/// With a cache attached the solve tries to *resume* from the cached final
/// state of a previous solve instead of starting from zero flow: the cached
/// potentials and flow are installed, capacity-validated, and then verified
/// against this instance's costs with the reduced-cost check — the exact
/// invariant (`rc ≥ 0` on every residual arc, §2.2) under which a flow is
/// minimum-cost for its value and SSPA may continue augmenting from it.
/// A repeated query resumes at `γ` committed units and performs zero
/// Dijkstra searches; a different instance that merely collides on the
/// shape key fails the check, is rolled back, and runs cold. Warm or cold,
/// the result is the same exact optimum — the cache can only save work
/// (observable via [`SspaStats::settled`] and [`SspaStats::warm_units`]),
/// never change the answer. On completion the solve publishes its own final
/// state back to the cache.
pub fn solve_complete_bipartite_warm_ctx(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    ctx: Option<&QueryContext>,
    cache: Option<&SspaCache>,
) -> Result<(Assignment, SspaStats), FlowAborted> {
    solve_inner(
        providers,
        customers,
        ctx,
        cache,
        false,
        FrontierKind::default(),
        false,
    )
}

/// [`solve_complete_bipartite`] with an explicit frontier-queue choice —
/// the equivalence lever the radix-vs-binary proptests and the `flow_core`
/// bench pull on. [`FrontierKind::Binary`] reproduces the pre-radix engine
/// exactly (same lazy decrease-key heap, same `(key, node)` tie-break).
pub fn solve_with_frontier(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    kind: FrontierKind,
) -> (Assignment, SspaStats) {
    solve_inner(providers, customers, None, None, false, kind, false)
        .unwrap_or_else(|_| unreachable!("no context, no abort"))
}

/// [`solve_complete_bipartite`] with per-operation frontier timing enabled:
/// [`SspaStats::heap_ns`] is populated alongside the always-on
/// `settle_ns`/`augment_ns` split. The per-op timestamps add measurable
/// overhead, so this is a diagnostics entry point (`probe`), not the
/// default path.
pub fn solve_complete_bipartite_profiled(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
) -> (Assignment, SspaStats) {
    solve_inner(
        providers,
        customers,
        None,
        None,
        false,
        FrontierKind::default(),
        true,
    )
    .unwrap_or_else(|_| unreachable!("no context, no abort"))
}

/// [`solve_complete_bipartite_ctx`] with *bottleneck* augmentation: each
/// shortest-path search pushes the path's full residual capacity instead of
/// a single unit.
///
/// Every unit routed along one shortest path costs the same, and after the
/// push the saturated arc leaves the residual graph while the potential
/// update restores `rc ≥ 0` everywhere — the §2.2 loop invariant — so the
/// result is the *same exact optimum* as unit augmentation. What changes is
/// the search count: each augmentation saturates at least one source or
/// sink arc, bounding the number of Dijkstra runs by `|Q| + |P|` instead of
/// `γ`. On weighted instances (the coreset tier's aggregated customer
/// units, CA's concise matching) this is the difference between `γ`
/// searches and a handful. [`SspaStats::iterations`] counts searches, so it
/// no longer equals the installed flow here — read [`Assignment::size`]
/// for that.
pub fn solve_complete_bipartite_bulk_ctx(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    ctx: Option<&QueryContext>,
) -> Result<(Assignment, SspaStats), FlowAborted> {
    solve_inner(
        providers,
        customers,
        ctx,
        None,
        true,
        FrontierKind::default(),
        false,
    )
}

fn solve_inner(
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    ctx: Option<&QueryContext>,
    cache: Option<&SspaCache>,
    bulk: bool,
    frontier: FrontierKind,
    profile: bool,
) -> Result<(Assignment, SspaStats), FlowAborted> {
    let mut g = FlowGraph::with_nodes(2 + providers.len() + customers.len());
    let s: NodeId = 0;
    let t: NodeId = 1;
    let q_node = |i: usize| (2 + i) as NodeId;
    let p_node = |j: usize| (2 + providers.len() + j) as NodeId;

    // Source and sink edges (cost 0, capacities q.k / p.w), §2.1.
    let src_edges: Vec<u32> = providers
        .iter()
        .enumerate()
        .map(|(i, q)| g.add_edge(s, q_node(i), q.cap, 0.0))
        .collect();
    // Complete bipartite distance edges. Edge capacity is the customer's
    // weight: a representative with weight w can receive up to w units from
    // the same provider ("M' may assign instances of a representative to
    // multiple service providers", §4.2); for unit customers this is the
    // paper's capacity-1 edge.
    let mut qp_edges: Vec<(u32, usize, usize)> =
        Vec::with_capacity(providers.len() * customers.len());
    for (i, q) in providers.iter().enumerate() {
        for (j, p) in customers.iter().enumerate() {
            let e = g.add_edge(q_node(i), p_node(j), p.weight, q.pos.dist(&p.pos));
            qp_edges.push((e, i, j));
        }
    }
    let sink_edges: Vec<u32> = customers
        .iter()
        .enumerate()
        .map(|(j, p)| g.add_edge(p_node(j), t, p.weight, 0.0))
        .collect();

    let key = cache_key(providers, customers);
    let mut warm_units = 0u64;
    if let Some(state) = cache.and_then(|c| c.load(key)) {
        warm_units = try_resume(
            &mut g,
            &state,
            providers,
            customers,
            &src_edges,
            &qp_edges,
            &sink_edges,
        );
        if let Some(c) = cache {
            c.record(warm_units > 0);
        }
    } else if let Some(c) = cache {
        c.record(false);
    }
    let warm_started = warm_units > 0;

    let gamma = required_flow(providers, customers);
    let mut dij = DijkstraState::with_frontier(frontier);
    dij.set_profile(profile);
    let mut iterations = 0u64;
    let mut settled = 0u64;
    // Phase split: search time vs augment/potential-update time. Two
    // timestamps per iteration (~µs-scale searches) — cheap enough to keep
    // on unconditionally, unlike the per-op heap timing behind `profile`.
    let mut settle_ns = 0u64;
    let mut augment_ns = 0u64;
    let extract = |g: &FlowGraph| {
        let mut asg = Assignment::default();
        for &(e, i, j) in &qp_edges {
            let f = g.edge_flow(e);
            if f > 0 {
                asg.pairs.push((i, j, f));
                asg.cost += f64::from(f) * providers[i].pos.dist(&customers[j].pos);
            }
        }
        asg
    };
    let mut units = warm_units;
    while units < gamma {
        // Iteration-head poll, plus stride polls inside the search: the
        // committed units always form a valid partial assignment, and an
        // in-flight (un-augmented) search never mutates the flow, so both
        // abort points unwind to exactly the committed prefix.
        let searched = match ctx.map(|c| c.check()) {
            Some(Err(a)) => Err(a),
            _ => {
                let t0 = Instant::now();
                dij.init(&g, s);
                let searched = dij.run_until_ctx(&g, t, ctx);
                settle_ns += t0.elapsed().as_nanos() as u64;
                searched
            }
        };
        match searched {
            Ok(Some(alpha_t)) => {
                settled += dij.settled_nodes().len() as u64;
                let t0 = Instant::now();
                if bulk {
                    let remaining = (gamma - units).min(u64::from(u32::MAX)) as u32;
                    units += u64::from(dij.augment_bottleneck(&mut g, t, remaining));
                } else {
                    dij.augment_unit(&mut g, t);
                    units += 1;
                }
                g.update_potentials(dij.settled_nodes(), |v| dij.alpha(v), alpha_t);
                augment_ns += t0.elapsed().as_nanos() as u64;
                iterations += 1;
            }
            Ok(None) => unreachable!("complete bipartite graph always admits γ units"),
            Err(a) => {
                let heap = dij.heap_counters();
                return Err(FlowAborted {
                    reason: a.reason,
                    partial: extract(&g),
                    stats: SspaStats {
                        iterations,
                        edges: g.num_edges() as u64,
                        settled,
                        warm_units,
                        warm_started,
                        settle_ns,
                        augment_ns,
                        heap_ns: dij.heap_ns(),
                        heap_pushes: heap.pushes,
                        heap_pops: heap.pops,
                        decrease_keys: heap.decrease_keys,
                        radix_fallbacks: heap.radix_fallbacks,
                    },
                });
            }
        }
    }

    let asg = extract(&g);
    let heap = dij.heap_counters();
    let stats = SspaStats {
        iterations,
        edges: g.num_edges() as u64,
        settled,
        warm_units,
        warm_started,
        settle_ns,
        augment_ns,
        heap_ns: dij.heap_ns(),
        heap_pushes: heap.pushes,
        heap_pops: heap.pops,
        decrease_keys: heap.decrease_keys,
        radix_fallbacks: heap.radix_fallbacks,
    };
    debug_assert!(
        g.check_reduced_costs(crate::dijkstra::EPS * 100.0).is_ok(),
        "optimality certificate violated"
    );
    if let Some(cache) = cache {
        // Publish this solve's final primal-dual state for the next
        // same-shaped query. Completed solves only — an aborted prefix is a
        // valid state too, but a completed one resumes further.
        let tau = (0..g.num_nodes()).map(|v| g.tau(v as NodeId)).collect();
        let pairs = asg
            .pairs
            .iter()
            .map(|&(i, j, u)| (i as u32, j as u32, u))
            .collect();
        cache.store(key, CachedState { tau, pairs });
    }
    Ok((asg, stats))
}

/// Installs a cached primal-dual state into a freshly built graph and
/// verifies it is a sound SSPA resume point for *this* instance. Returns
/// the number of installed units (0 = rejected and fully rolled back).
///
/// Three gates, in order:
/// 1. shape: the potential vector must cover every node and every flow
///    triple must index a real provider/customer;
/// 2. capacity: per-provider loads within `q.k`, per-customer within `p.w`;
/// 3. optimality: with the state installed, every residual arc must have
///    non-negative reduced cost under the *current* costs — the §2.2
///    certificate that the flow is minimum-cost for its value, which is
///    precisely SSPA's loop invariant.
fn try_resume(
    g: &mut FlowGraph,
    state: &CachedState,
    providers: &[FlowProvider],
    customers: &[FlowCustomer],
    src_edges: &[u32],
    qp_edges: &[(u32, usize, usize)],
    sink_edges: &[u32],
) -> u64 {
    if state.tau.len() != g.num_nodes() {
        return 0;
    }
    let mut qload = vec![0u64; providers.len()];
    let mut pload = vec![0u64; customers.len()];
    for &(i, j, u) in &state.pairs {
        let (i, j) = (i as usize, j as usize);
        if i >= providers.len() || j >= customers.len() {
            return 0;
        }
        qload[i] += u64::from(u);
        pload[j] += u64::from(u);
    }
    if qload
        .iter()
        .zip(providers)
        .any(|(&l, q)| l > u64::from(q.cap))
        || pload
            .iter()
            .zip(customers)
            .any(|(&l, p)| l > u64::from(p.weight))
    {
        return 0;
    }

    let push = |g: &mut FlowGraph, reverse: bool| {
        for &(i, j, u) in &state.pairs {
            let (i, j) = (i as usize, j as usize);
            let arc = u32::from(reverse);
            g.push_flow(2 * src_edges[i] + arc, u);
            g.push_flow(2 * qp_edges[i * customers.len() + j].0 + arc, u);
            g.push_flow(2 * sink_edges[j] + arc, u);
        }
    };
    for (v, &tau) in state.tau.iter().enumerate() {
        g.set_tau(v as NodeId, tau);
    }
    push(g, false);
    if g.check_reduced_costs(crate::dijkstra::EPS * 100.0).is_err() {
        // A colliding shape key from different geometry: roll the state
        // back completely and let the solve run cold.
        push(g, true);
        for v in 0..state.tau.len() {
            g.set_tau(v as NodeId, 0.0);
        }
        return 0;
    }
    state.pairs.iter().map(|&(_, _, u)| u64::from(u)).sum()
}

/// Convenience constructor for unit-weight customers.
pub fn unit_customers(points: &[Point]) -> Vec<FlowCustomer> {
    points
        .iter()
        .map(|&pos| FlowCustomer { pos, weight: 1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(x: f64, y: f64, cap: u32) -> FlowProvider {
        FlowProvider {
            pos: Point::new(x, y),
            cap,
        }
    }

    fn p(x: f64, y: f64) -> FlowCustomer {
        FlowCustomer {
            pos: Point::new(x, y),
            weight: 1,
        }
    }

    #[test]
    fn paper_running_example_figure_2() {
        // Figure 2: q1 (k=1), q2 (k=2); dist(q1,p1)=4 ... per the edge labels:
        // w(q1,p1)=4, w(q1,p2)=3, w(q2,p1)=7, w(q2,p2)=10.
        // SSPA's example result: M = {(q1,p1), (q2,p2)}? Let's check the
        // costs: the example augments (q1,p2) first (cost 3), then reroutes:
        // final M = {(q1,p1),(q2,p2)} with cost 14, versus the alternative
        // {(q1,p2),(q2,p1)} with cost 10. The optimum is 10.
        //
        // We can't use Euclidean geometry to realise arbitrary costs, so we
        // place points on a line realising the same optimal structure:
        // q1 at 0, q2 at 100; p1 at 3, p2 at 97.
        let providers = [q(0.0, 0.0, 1), q(100.0, 0.0, 2)];
        let customers = [p(3.0, 0.0), p(97.0, 0.0)];
        let (asg, stats) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 2);
        assert_eq!(asg.cost, 6.0);
        assert_eq!(stats.iterations, 2);
        let mut pairs = asg.pairs.clone();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0, 1), (1, 1, 1)]);
    }

    #[test]
    fn capacity_forces_nonlocal_assignment() {
        // One provider with capacity 1 sits on top of two customers; the
        // other provider is far. The near provider takes the closest
        // customer, the far one serves the rest.
        let providers = [q(0.0, 0.0, 1), q(10.0, 0.0, 1)];
        let customers = [p(0.0, 1.0), p(0.0, 2.0)];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 2);
        // Optimal: q0-p0 (1) + q1-p1 (sqrt(104)) vs q0-p1 (2) + q1-p0 (sqrt(101)).
        let alt1 = 1.0 + (104.0f64).sqrt();
        let alt2 = 2.0 + (101.0f64).sqrt();
        assert!((asg.cost - alt1.min(alt2)).abs() < 1e-9);
    }

    #[test]
    fn surplus_capacity_leaves_providers_underutilised() {
        let providers = [q(0.0, 0.0, 5), q(100.0, 0.0, 5)];
        let customers = [p(1.0, 0.0), p(2.0, 0.0), p(99.0, 0.0)];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 3, "all customers matched");
        let load = asg.provider_load(2);
        assert_eq!(load[0], 2);
        assert_eq!(load[1], 1);
        assert!((asg.cost - (1.0 + 2.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn surplus_customers_leave_some_unmatched() {
        // γ = Σk = 2 < |P| = 3: exactly one customer stays unmatched
        // (p "is not assigned to any qi, since they are all full", §1).
        let providers = [q(0.0, 0.0, 2)];
        let customers = [p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 2);
        assert!((asg.cost - 3.0).abs() < 1e-9, "the two nearest are kept");
        let load = asg.customer_load(3);
        assert_eq!(load, vec![1, 1, 0]);
    }

    #[test]
    fn weighted_customers_can_split_across_providers() {
        // A single representative of weight 3 between two providers with
        // capacities 2 and 2: it must be split 2 + 1.
        let providers = [q(0.0, 0.0, 2), q(10.0, 0.0, 2)];
        let customers = [FlowCustomer {
            pos: Point::new(4.0, 0.0),
            weight: 3,
        }];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 3);
        let load = asg.provider_load(2);
        assert_eq!(load[0], 2, "nearer provider takes its full capacity");
        assert_eq!(load[1], 1);
        assert!((asg.cost - (2.0 * 4.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn expired_deadline_aborts_before_the_first_augmentation() {
        use std::time::{Duration, Instant};
        let providers = [q(0.0, 0.0, 2), q(50.0, 0.0, 2)];
        let customers = unit_customers(&[
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(49.0, 0.0),
        ]);
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let err = solve_complete_bipartite_ctx(&providers, &customers, Some(&ctx)).unwrap_err();
        assert_eq!(err.reason, AbortReason::DeadlineExceeded);
        assert_eq!(err.partial.size(), 0, "no iteration ran");
        assert_eq!(err.stats.iterations, 0);
        assert!(err.stats.edges > 0, "the graph was built before the poll");
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn clean_context_matches_the_plain_entry_point() {
        let providers = [q(0.0, 0.0, 1), q(100.0, 0.0, 2)];
        let customers = [p(3.0, 0.0), p(97.0, 0.0)];
        let ctx = QueryContext::new();
        let (asg, stats) =
            solve_complete_bipartite_ctx(&providers, &customers, Some(&ctx)).unwrap();
        let (want, want_stats) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.cost, want.cost);
        assert_eq!(asg.pairs, want.pairs);
        assert_eq!(stats.iterations, want_stats.iterations);
    }

    #[test]
    fn mid_run_cancellation_keeps_a_valid_committed_prefix() {
        // A large instance (γ = 400 over an 80k-edge graph takes well over
        // the canceller's delay) cancelled from another thread: the solve
        // must stop part-way with a prefix that respects every capacity.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let providers: Vec<FlowProvider> = (0..40)
            .map(|_| {
                q(
                    rng.random_range(0.0..1000.0),
                    rng.random_range(0.0..1000.0),
                    10,
                )
            })
            .collect();
        let customers: Vec<FlowCustomer> = (0..2000)
            .map(|_| p(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect();
        let ctx = QueryContext::new();
        let canceller = ctx.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            canceller.cancel();
        });
        let result = solve_complete_bipartite_ctx(&providers, &customers, Some(&ctx));
        handle.join().unwrap();
        let err = result.expect_err("γ=400 unit augmentations far outlast a 5 ms fuse");
        assert_eq!(err.reason, AbortReason::Cancelled);
        assert_eq!(err.partial.size(), err.stats.iterations);
        assert!(err.stats.iterations < 400, "aborted before completing");
        // Capacity feasibility of the partial assignment.
        for (qi, load) in err
            .partial
            .provider_load(providers.len())
            .iter()
            .enumerate()
        {
            assert!(*load <= u64::from(providers[qi].cap), "provider {qi}");
        }
        for (pj, load) in err
            .partial
            .customer_load(customers.len())
            .iter()
            .enumerate()
        {
            assert!(*load <= u64::from(customers[pj].weight), "customer {pj}");
        }
    }

    fn random_instance(
        seed: u64,
        nq: usize,
        np: usize,
        max_cap: u32,
    ) -> (Vec<FlowProvider>, Vec<FlowCustomer>) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let providers = (0..nq)
            .map(|_| {
                q(
                    rng.random_range(0.0..1000.0),
                    rng.random_range(0.0..1000.0),
                    rng.random_range(1..=max_cap),
                )
            })
            .collect();
        let customers = (0..np)
            .map(|_| p(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect();
        (providers, customers)
    }

    #[test]
    fn warm_start_resumes_a_repeated_query_without_searching() {
        let (providers, customers) = random_instance(7, 6, 60, 5);
        let cache = SspaCache::new();
        let (cold, cold_stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        assert!(!cold_stats.warm_started, "first solve finds an empty cache");
        assert!(cold_stats.settled > 0);
        let (warm, warm_stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        assert!(warm_stats.warm_started);
        assert_eq!(cache.hit_miss(), (1, 1));
        assert_eq!(
            warm.cost, cold.cost,
            "a resumed repeated query reproduces the optimum exactly"
        );
        assert_eq!(warm.pairs, cold.pairs);
        assert_eq!(warm_stats.warm_units, cold_stats.iterations);
        assert_eq!(warm_stats.iterations, 0, "γ units came from the cache");
        assert_eq!(warm_stats.settled, 0, "no Dijkstra run at all");
    }

    #[test]
    fn shape_mismatch_falls_back_to_cold() {
        let (providers, customers) = random_instance(8, 4, 30, 3);
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        // Same providers, one fewer customer: key differs, entry unusable.
        let fewer = &customers[..29];
        let (asg, stats) =
            solve_complete_bipartite_warm_ctx(&providers, fewer, None, Some(&cache)).unwrap();
        assert!(!stats.warm_started);
        let (want, _) = solve_complete_bipartite(&providers, fewer);
        assert_eq!(asg.cost, want.cost);
    }

    #[test]
    fn colliding_shape_key_from_different_geometry_is_rejected() {
        // Prime on instance A, solve instance B with a colliding shape key
        // but completely different geometry: the reduced-cost gate must
        // reject A's state, roll it back and produce B's exact optimum.
        let (pa, ca) = random_instance(100, 5, 40, 4);
        let (pb, cb) = random_instance(200, 5, 40, 4);
        // Force identical capacities so the shape keys collide.
        let pb: Vec<FlowProvider> = pb
            .iter()
            .zip(&pa)
            .map(|(b, a)| FlowProvider {
                pos: b.pos,
                cap: a.cap,
            })
            .collect();
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&pa, &ca, None, Some(&cache));
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&pb, &cb, None, Some(&cache)).unwrap();
        assert!(
            !stats.warm_started,
            "foreign-geometry state must fail the reduced-cost gate"
        );
        let (cold, _) = solve_complete_bipartite(&pb, &cb);
        assert_eq!(
            warm.cost, cold.cost,
            "after rollback the solve is exactly the cold solve"
        );
        assert_eq!(warm.pairs, cold.pairs);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// Warm-started SSPA is exact: on any random instance, solving
        /// twice through a shared cache yields the same optimal cost as the
        /// cold solve (and both match the plain entry point).
        #[test]
        fn prop_warm_start_cost_equals_cold(
            seed in 0u64..10_000,
            nq in 1usize..8,
            np in 1usize..40,
            max_cap in 1u32..6,
        ) {
            let (providers, customers) = random_instance(seed, nq, np, max_cap);
            let (cold, _) = solve_complete_bipartite(&providers, &customers);
            let cache = SspaCache::new();
            let (first, _) =
                solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                    .unwrap();
            let (warm, stats) =
                solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                    .unwrap();
            proptest::prop_assert!(stats.warm_started);
            let tol = 1e-9 * cold.cost.max(1.0);
            proptest::prop_assert!((first.cost - cold.cost).abs() <= tol);
            proptest::prop_assert!(
                (warm.cost - cold.cost).abs() <= tol,
                "warm {} vs cold {}", warm.cost, cold.cost
            );
            proptest::prop_assert_eq!(warm.size(), cold.size());
        }
    }

    #[test]
    fn apply_delta_remove_customer_keeps_warm_resume() {
        let (providers, mut customers) = random_instance(11, 5, 40, 3);
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        // Scarce regime (Σcap < |P|): most customers are unmatched. Removing
        // one of those only drops zero-flow arcs, so the entry must survive
        // with the same swap-with-last semantics the cache applies.
        let assigned: std::collections::HashSet<usize> = cache
            .state()
            .unwrap()
            .pairs
            .iter()
            .map(|&(_, p, _)| p as usize)
            .collect();
        let removed = (0..customers.len())
            .find(|i| !assigned.contains(i))
            .expect("scarce instance has unmatched customers");
        assert!(cache.apply_delta(CacheDelta::RemoveCustomer {
            index: removed,
            weight: 1
        }));
        customers.swap_remove(removed);
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        assert!(
            stats.warm_started,
            "removing an unmatched customer only drops arcs: the certificate must survive"
        );
        let (cold, _) = solve_complete_bipartite(&providers, &customers);
        assert!((warm.cost - cold.cost).abs() < 1e-9 * cold.cost.max(1.0));
        assert_eq!(warm.size(), cold.size());
    }

    #[test]
    fn apply_delta_remove_matched_customer_of_saturated_provider_invalidates() {
        // Scarce regime: every provider is saturated, so a matched departure
        // frees an `s → q` arc whose reduced cost `τ(q) − τ(s)` is negative
        // (τ(s) dominates). The entry must be dropped — the remaining flow
        // is not min-cost for its value — and the cold re-solve stays exact.
        let (providers, mut customers) = random_instance(13, 4, 30, 2);
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        let removed = cache.state().unwrap().pairs[0].1 as usize;
        let survived = cache.apply_delta(CacheDelta::RemoveCustomer {
            index: removed,
            weight: 1,
        });
        customers.swap_remove(removed);
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        let (cold, _) = solve_complete_bipartite(&providers, &customers);
        assert!((warm.cost - cold.cost).abs() < 1e-9 * cold.cost.max(1.0));
        if survived {
            // Tolerated only if the serving provider's potential really
            // covered τ(s); either way the resume must have stayed exact.
            assert_eq!(warm.size(), cold.size());
        } else {
            assert!(!stats.warm_started, "dropped entry cannot resume warm");
        }
    }

    #[test]
    fn apply_delta_add_far_customer_keeps_warm_resume() {
        // Scarce regime: Σcap = 3 < |P| = 8, every provider saturated. A new
        // customer far beyond the marginal cannot improve the flow, so the
        // cached state stays certified and the resume needs zero searches.
        let (providers, mut customers) = random_instance(12, 3, 8, 1);
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        let far = Point::new(50_000.0, 50_000.0);
        assert!(cache.apply_delta(CacheDelta::AddCustomer {
            pos: far,
            weight: 1,
            providers: &providers,
        }));
        customers.push(FlowCustomer {
            pos: far,
            weight: 1,
        });
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        assert!(stats.warm_started);
        assert_eq!(stats.iterations, 0, "γ unchanged: nothing left to augment");
        let (cold, _) = solve_complete_bipartite(&providers, &customers);
        assert!((warm.cost - cold.cost).abs() < 1e-9 * cold.cost.max(1.0));
    }

    #[test]
    fn apply_delta_add_undercutting_customer_invalidates() {
        // A customer arriving on top of a provider beats whatever marginal
        // the cached flow pays: the entry must be dropped, and the next
        // solve (cold) must pick the new customer up.
        let providers = [q(0.0, 0.0, 1)];
        let mut customers = vec![p(30.0, 0.0), p(40.0, 0.0)];
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        assert!(!cache.apply_delta(CacheDelta::AddCustomer {
            pos: Point::new(0.1, 0.0),
            weight: 1,
            providers: &providers,
        }));
        assert!(cache.state().is_none(), "stale entry must be dropped");
        customers.push(p(0.1, 0.0));
        let (asg, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        assert!(!stats.warm_started);
        assert!((asg.cost - 0.1).abs() < 1e-9, "the arrival wins the slot");
    }

    #[test]
    fn apply_delta_capacity_changes() {
        // Surplus regime: provider 0 has slack, so a mild cut that still
        // covers its load stays certified; an increase stays certified; a
        // cut below the load forces an eviction and drops the entry.
        let providers = [q(0.0, 0.0, 5), q(100.0, 0.0, 5)];
        let customers = unit_customers(&[
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(99.0, 0.0),
        ]);
        let cache = SspaCache::new();
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        // Provider 0 carries 2 units. 5 → 3 keeps the load: certified.
        assert!(cache.apply_delta(CacheDelta::SetProviderCapacity {
            index: 0,
            old_cap: 5,
            new_cap: 3,
        }));
        let shrunk = [q(0.0, 0.0, 3), providers[1]];
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&shrunk, &customers, None, Some(&cache)).unwrap();
        assert!(stats.warm_started);
        let (cold, _) = solve_complete_bipartite(&shrunk, &customers);
        assert!((warm.cost - cold.cost).abs() < 1e-9);
        // 3 → 6 only re-exposes source capacity: certified.
        assert!(cache.apply_delta(CacheDelta::SetProviderCapacity {
            index: 0,
            old_cap: 3,
            new_cap: 6,
        }));
        let grown = [q(0.0, 0.0, 6), providers[1]];
        let (_, stats) =
            solve_complete_bipartite_warm_ctx(&grown, &customers, None, Some(&cache)).unwrap();
        assert!(stats.warm_started);
        // 6 → 1 is below the load of 2: eviction needed, entry dropped.
        assert!(!cache.apply_delta(CacheDelta::SetProviderCapacity {
            index: 0,
            old_cap: 6,
            new_cap: 1,
        }));
        assert!(cache.state().is_none());
    }

    #[test]
    fn apply_delta_provider_move_always_invalidates() {
        let (providers, customers) = random_instance(13, 4, 20, 2);
        let cache = SspaCache::new();
        assert!(
            !cache.apply_delta(CacheDelta::MoveProvider { index: 0 }),
            "empty cache has nothing to keep"
        );
        let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
        assert!(cache.state().is_some());
        assert!(!cache.apply_delta(CacheDelta::MoveProvider { index: 0 }));
        assert!(cache.state().is_none());
    }

    #[test]
    fn prime_restores_a_snapshot_for_resume() {
        let (providers, customers) = random_instance(14, 5, 30, 3);
        let cache = SspaCache::new();
        let (cold, _) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache)).unwrap();
        let snapshot = cache.state().expect("completed solve published");
        // A fresh cache primed with the snapshot resumes without searching.
        let fresh = SspaCache::new();
        fresh.prime(&providers, &customers, snapshot);
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&fresh)).unwrap();
        assert!(stats.warm_started);
        assert_eq!(stats.iterations, 0);
        assert!((warm.cost - cold.cost).abs() < 1e-9 * cold.cost.max(1.0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Soundness of delta-maintained warm starts: after an arbitrary
        /// sequence of removals / arrivals / capacity changes / moves
        /// mirrored into the cache, solving the mutated instance through
        /// the cache yields exactly the cold optimum — certified entries
        /// resume, uncertifiable ones were dropped, and either way the
        /// answer is the same.
        #[test]
        fn prop_apply_delta_never_corrupts(
            seed in 0u64..10_000,
            nq in 1usize..5,
            np in 2usize..20,
            ops in proptest::collection::vec((0u8..4, 0u16..1000), 1..8),
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let (mut providers, mut customers) = random_instance(seed, nq, np, 4);
            let cache = SspaCache::new();
            let _ = solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xde17a);
            for (op, pick) in ops {
                match op {
                    0 if customers.len() > 1 => {
                        let j = pick as usize % customers.len();
                        cache.apply_delta(CacheDelta::RemoveCustomer { index: j, weight: customers[j].weight });
                        customers.swap_remove(j);
                    }
                    1 => {
                        let pos = Point::new(
                            rng.random_range(0.0..1000.0),
                            rng.random_range(0.0..1000.0),
                        );
                        cache.apply_delta(CacheDelta::AddCustomer { pos, weight: 1, providers: &providers });
                        customers.push(FlowCustomer { pos, weight: 1 });
                    }
                    2 => {
                        let i = pick as usize % providers.len();
                        let old_cap = providers[i].cap;
                        let new_cap = rng.random_range(0..6u32);
                        cache.apply_delta(CacheDelta::SetProviderCapacity { index: i, old_cap, new_cap });
                        providers[i].cap = new_cap;
                    }
                    _ => {
                        let i = pick as usize % providers.len();
                        cache.apply_delta(CacheDelta::MoveProvider { index: i });
                        providers[i].pos = Point::new(
                            rng.random_range(0.0..1000.0),
                            rng.random_range(0.0..1000.0),
                        );
                    }
                }
            }
            let (warm, _) =
                solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                    .unwrap();
            let (cold, _) = solve_complete_bipartite(&providers, &customers);
            let tol = 1e-9 * cold.cost.max(1.0);
            proptest::prop_assert!(
                (warm.cost - cold.cost).abs() <= tol,
                "delta-warmed {} vs cold {}", warm.cost, cold.cost
            );
            proptest::prop_assert_eq!(warm.size(), cold.size());
        }
    }

    #[test]
    fn bulk_augmentation_matches_unit_on_weighted_instances() {
        // A weight-3 representative split across two providers: unit mode
        // needs 3 searches, bulk saturates whole arcs and needs at most
        // |Q| + |P| = 3.
        let providers = [q(0.0, 0.0, 2), q(10.0, 0.0, 2)];
        let customers = [FlowCustomer {
            pos: Point::new(4.0, 0.0),
            weight: 3,
        }];
        let (unit, unit_stats) = solve_complete_bipartite(&providers, &customers);
        let (bulk, bulk_stats) =
            solve_complete_bipartite_bulk_ctx(&providers, &customers, None).unwrap();
        assert_eq!(bulk.size(), unit.size());
        assert!((bulk.cost - unit.cost).abs() < 1e-9);
        assert_eq!(unit_stats.iterations, 3);
        assert!(
            bulk_stats.iterations < unit_stats.iterations,
            "bulk pushed more than one unit per search ({} searches)",
            bulk_stats.iterations
        );
    }

    #[test]
    fn bulk_augmentation_respects_context_aborts() {
        use std::time::{Duration, Instant};
        let providers = [q(0.0, 0.0, 2)];
        let customers = [p(1.0, 0.0), p(2.0, 0.0)];
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let err =
            solve_complete_bipartite_bulk_ctx(&providers, &customers, Some(&ctx)).unwrap_err();
        assert_eq!(err.reason, AbortReason::DeadlineExceeded);
        assert_eq!(err.partial.size(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Bottleneck augmentation is exact: on any random weighted
        /// instance it reproduces the unit-augmentation optimum (cost and
        /// size) with no more searches than units.
        #[test]
        fn prop_bulk_cost_equals_unit(
            seed in 0u64..10_000,
            nq in 1usize..6,
            np in 1usize..20,
            max_cap in 1u32..6,
            max_w in 1u32..5,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let (providers, mut customers) = random_instance(seed, nq, np, max_cap);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xb01d);
            for c in &mut customers {
                c.weight = rng.random_range(1..=max_w);
            }
            let (unit, unit_stats) = solve_complete_bipartite(&providers, &customers);
            let (bulk, bulk_stats) =
                solve_complete_bipartite_bulk_ctx(&providers, &customers, None).unwrap();
            let tol = 1e-9 * unit.cost.max(1.0);
            proptest::prop_assert_eq!(bulk.size(), unit.size());
            proptest::prop_assert!(
                (bulk.cost - unit.cost).abs() <= tol,
                "bulk {} vs unit {}", bulk.cost, unit.cost
            );
            proptest::prop_assert!(bulk_stats.iterations <= unit_stats.iterations);
        }
    }

    #[test]
    fn empty_inputs() {
        let (asg, _) = solve_complete_bipartite(&[], &[]);
        assert_eq!(asg.size(), 0);
        assert_eq!(asg.cost, 0.0);
        let (asg, _) = solve_complete_bipartite(&[q(0.0, 0.0, 3)], &[]);
        assert_eq!(asg.size(), 0);
        let (asg, _) = solve_complete_bipartite(&[], &unit_customers(&[Point::new(1.0, 1.0)]));
        assert_eq!(asg.size(), 0);
    }

    #[test]
    fn zero_capacity_provider_is_ignored() {
        let providers = [q(0.0, 0.0, 0), q(5.0, 0.0, 1)];
        let customers = [p(0.0, 0.0)];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 1);
        assert_eq!(asg.pairs[0].0, 1, "capacity-0 provider must not serve");
    }

    #[test]
    fn voronoi_violating_example_from_figure_1() {
        // Figure 1's moral: nearest-provider assignment violates capacities;
        // the optimal CCA spills the overflow to farther providers. Build a
        // small instance with that structure: 3 customers around q0 (k=1).
        let providers = [q(0.0, 0.0, 1), q(10.0, 0.0, 2)];
        let customers = [p(0.5, 0.0), p(-0.5, 0.0), p(1.0, 0.0)];
        let (asg, _) = solve_complete_bipartite(&providers, &customers);
        assert_eq!(asg.size(), 3);
        let load = asg.provider_load(2);
        assert_eq!(load[0], 1, "capacity respected despite 3 nearby customers");
        assert_eq!(load[1], 2);
    }
}
