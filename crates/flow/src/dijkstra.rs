//! Dijkstra over reduced costs, with resumable state and the Path Update
//! Algorithm (PUA, Algorithm 5).
//!
//! SSPA computes each augmenting path with Dijkstra on reduced costs (§2.2).
//! The incremental algorithms additionally need to *resume* a computation
//! after inserting a new edge instead of restarting (§3.4.1):
//! [`DijkstraState::pua_insert_edge`] runs the bounded relaxation wave of
//! Algorithm 5 and [`DijkstraState::drain_below_sink`] re-settles any node
//! whose corrected distance dropped below the sink's, so the settled set
//! always equals `{v : α(v) < α(t)}` plus the sink — the precondition of the
//! potential update.
//!
//! # Frontier queue
//!
//! The frontier (`Hd`) defaults to a monotone [`RadixQueue`] keyed on the
//! order-preserving u64 bit pattern of the (non-negative) distances —
//! Dijkstra keys never decrease, so bucket operations replace the binary
//! heap's `log n` pointer-chasing sift. PUA's wave and `EPS`-tolerant
//! settles can occasionally violate monotonicity; the first such push
//! migrates the run to a binary heap with identical lazy-decrease-key
//! semantics (counted in [`HeapCounters::radix_fallbacks`]), so correctness
//! never depends on the monotone assumption. The two frontiers are pinned
//! equivalent by proptest (`tests/frontier_equivalence.rs`). The wave heap
//! (`Hf`) stays a binary heap: improved settled nodes arrive in arbitrary
//! key order by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use cca_geo::OrdF64;
use cca_storage::{Aborted, QueryContext};

use crate::graph::{ArcId, FlowGraph, NodeId, NO_ARC};
use crate::radix::RadixQueue;

/// Tolerance for floating-point noise in reduced costs. Distances are O(10³)
/// (the normalised world), so 1e-7 absolute slack is ~12 decimal digits of
/// headroom below the signal.
pub const EPS: f64 = 1e-7;

/// Inner-loop iterations between [`QueryContext`] polls in the
/// context-aware entry points (Dijkstra settles, Hungarian column scans).
/// A poll is an atomic load plus (at worst) an `Instant::now`; at
/// 64-iteration stride its cost is noise against the loop body, yet a
/// deadline or cancellation is still observed within microseconds — the
/// CPU-bound analogue of the storage layer's poll-before-every-page-access.
const CTX_POLL_STRIDE: u32 = 64;

/// Strided cooperative poll: checks `ctx` every [`CTX_POLL_STRIDE`] calls
/// (counting down through `counter`), erroring with the typed [`Aborted`].
#[inline]
pub(crate) fn poll(ctx: Option<&QueryContext>, counter: &mut u32) -> Result<(), Aborted> {
    if let Some(ctx) = ctx {
        if *counter == 0 {
            *counter = CTX_POLL_STRIDE;
            ctx.check()?;
        }
        *counter -= 1;
    }
    Ok(())
}

/// Which frontier queue a [`DijkstraState`] starts each run with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FrontierKind {
    /// Monotone radix/bucket queue on u64 key bits, with automatic
    /// migration to the binary heap if monotonicity breaks mid-run.
    #[default]
    Radix,
    /// Plain binary heap — the pre-radix engine, kept as the equivalence
    /// oracle and the fallback target.
    Binary,
}

/// Frontier-queue operation counts, cumulative over a [`DijkstraState`]'s
/// lifetime (i.e. across all `init`/run cycles of one solve).
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapCounters {
    /// Entries pushed into the frontier (lazy decrease-key re-pushes
    /// included).
    pub pushes: u64,
    /// Entries popped from the frontier (stale entries included).
    pub pops: u64,
    /// Pushes that improved a node already queued in this run — the
    /// operations a pairing/Fibonacci heap would call decrease-key.
    pub decrease_keys: u64,
    /// Runs migrated from the radix queue to the binary heap because a push
    /// went below the last popped minimum (PUA wave or EPS-tolerant settle).
    pub radix_fallbacks: u64,
}

/// The frontier queue: a radix queue until monotonicity breaks, a binary
/// heap after (or throughout, for [`FrontierKind::Binary`]). Both sides use
/// lazy decrease-key and order entries by `(key bits, node)`, which for the
/// non-negative keys Dijkstra produces is exactly the ordering of the old
/// `BinaryHeap<Reverse<(OrdF64, NodeId)>>` frontier.
struct Frontier {
    radix: RadixQueue,
    binary: BinaryHeap<Reverse<(u64, NodeId)>>,
    use_binary: bool,
    prefer_binary: bool,
}

impl Frontier {
    fn new(kind: FrontierKind) -> Self {
        let prefer_binary = kind == FrontierKind::Binary;
        Frontier {
            radix: RadixQueue::new(),
            binary: BinaryHeap::new(),
            use_binary: prefer_binary,
            prefer_binary,
        }
    }

    /// Empties both sides (keeping allocations) and re-arms the preferred
    /// queue for the next run.
    fn clear(&mut self) {
        self.radix.clear();
        self.binary.clear();
        self.use_binary = self.prefer_binary;
    }

    /// Pushes an entry; returns `true` when this push triggered the
    /// radix → binary migration.
    #[inline]
    fn push(&mut self, key: u64, v: NodeId) -> bool {
        if self.use_binary {
            self.binary.push(Reverse((key, v)));
            return false;
        }
        match self.radix.push(key, v) {
            Ok(()) => false,
            Err((k, n)) => {
                // Monotonicity broke: move every queued entry to the binary
                // heap and finish the run there. Nothing is lost or
                // reordered — both sides pop exact minima.
                let binary = &mut self.binary;
                self.radix.drain_into(|k, n| binary.push(Reverse((k, n))));
                binary.push(Reverse((k, n)));
                self.use_binary = true;
                true
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, NodeId)> {
        if self.use_binary {
            self.binary.pop().map(|Reverse(e)| e)
        } else {
            self.radix.pop()
        }
    }

    #[inline]
    fn peek_min(&mut self) -> Option<(u64, NodeId)> {
        if self.use_binary {
            self.binary.peek().map(|&Reverse(e)| e)
        } else {
            self.radix.peek_min()
        }
    }
}

/// Resumable single-source shortest-path state over a [`FlowGraph`].
///
/// Node bookkeeping uses *epochs* so `init` is O(1) amortised rather than
/// O(|V|): an entry is valid only if its epoch matches the current run's.
pub struct DijkstraState {
    alpha: Vec<f64>,
    parent: Vec<ArcId>,
    settled: Vec<bool>,
    epoch_of: Vec<u32>,
    epoch: u32,
    /// Frontier queue (`Hd` in the paper); lazy decrease-key.
    frontier: Frontier,
    /// Re-relaxation wave over improved *settled* nodes (`Hf`, Algorithm 5).
    wave: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    /// Settled nodes of the current run, in settle order. α values must be
    /// re-read at use time — PUA may improve them after settling.
    settled_list: Vec<NodeId>,
    source: NodeId,
    counters: HeapCounters,
    /// When set, frontier push/pop time is accumulated into `heap_ns`.
    /// Off by default: per-op `Instant` reads cost real time in the hot
    /// loop, so only profiled entry points turn this on.
    profile: bool,
    heap_ns: u64,
}

impl DijkstraState {
    pub fn new() -> Self {
        Self::with_frontier(FrontierKind::default())
    }

    /// A state whose runs start on the given frontier queue.
    pub fn with_frontier(kind: FrontierKind) -> Self {
        DijkstraState {
            alpha: Vec::new(),
            parent: Vec::new(),
            settled: Vec::new(),
            epoch_of: Vec::new(),
            epoch: 0,
            frontier: Frontier::new(kind),
            wave: BinaryHeap::new(),
            settled_list: Vec::new(),
            source: 0,
            counters: HeapCounters::default(),
            profile: false,
            heap_ns: 0,
        }
    }

    /// Cumulative frontier operation counts (see [`HeapCounters`]).
    #[inline]
    pub fn heap_counters(&self) -> HeapCounters {
        self.counters
    }

    /// Nanoseconds spent in frontier push/pop, when profiling is on.
    #[inline]
    pub fn heap_ns(&self) -> u64 {
        self.heap_ns
    }

    /// Enables per-operation frontier timing (see [`DijkstraState::heap_ns`]).
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// Frontier push with counter/profiling bookkeeping.
    #[inline]
    fn fpush(&mut self, key: f64, v: NodeId) {
        debug_assert!(key >= 0.0, "Dijkstra keys are non-negative");
        self.counters.pushes += 1;
        if self.profile {
            let t = Instant::now();
            let fell_back = self.frontier.push(key.to_bits(), v);
            self.heap_ns += t.elapsed().as_nanos() as u64;
            self.counters.radix_fallbacks += u64::from(fell_back);
        } else if self.frontier.push(key.to_bits(), v) {
            self.counters.radix_fallbacks += 1;
        }
    }

    /// Frontier pop with counter/profiling bookkeeping.
    #[inline]
    fn fpop(&mut self) -> Option<(f64, NodeId)> {
        let popped = if self.profile {
            let t = Instant::now();
            let popped = self.frontier.pop();
            self.heap_ns += t.elapsed().as_nanos() as u64;
            popped
        } else {
            self.frontier.pop()
        };
        popped.map(|(k, v)| {
            self.counters.pops += 1;
            (f64::from_bits(k), v)
        })
    }

    fn ensure(&mut self, n: usize) {
        if self.alpha.len() < n {
            self.alpha.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_ARC);
            self.settled.resize(n, false);
            self.epoch_of.resize(n, 0);
        }
    }

    #[inline]
    fn fresh(&self, v: NodeId) -> bool {
        self.epoch_of[v as usize] == self.epoch
    }

    fn touch(&mut self, v: NodeId) {
        let i = v as usize;
        if self.epoch_of[i] != self.epoch {
            self.epoch_of[i] = self.epoch;
            self.alpha[i] = f64::INFINITY;
            self.parent[i] = NO_ARC;
            self.settled[i] = false;
        }
    }

    /// Starts a new computation from `source`.
    pub fn init(&mut self, g: &FlowGraph, source: NodeId) {
        self.ensure(g.num_nodes());
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: hard reset keeps epoch logic sound.
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.frontier.clear();
        self.wave.clear();
        self.settled_list.clear();
        self.source = source;
        self.touch(source);
        self.alpha[source as usize] = 0.0;
        self.fpush(0.0, source);
    }

    /// α(v), or `+∞` if unreached in this run.
    #[inline]
    pub fn alpha(&self, v: NodeId) -> f64 {
        if (v as usize) < self.alpha.len() && self.fresh(v) {
            self.alpha[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// True if `v` has been settled (de-heaped) in this run.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        (v as usize) < self.settled.len() && self.fresh(v) && self.settled[v as usize]
    }

    /// The arc through which `v` was reached, or `NO_ARC`.
    #[inline]
    pub fn parent_arc(&self, v: NodeId) -> ArcId {
        if (v as usize) < self.parent.len() && self.fresh(v) {
            self.parent[v as usize]
        } else {
            NO_ARC
        }
    }

    /// Settled nodes of the current run (the "visited nodes" of Algorithm 1
    /// lines 8–9). Read current α via [`DijkstraState::alpha`].
    pub fn settled_nodes(&self) -> &[NodeId] {
        &self.settled_list
    }

    /// Relaxes one arc; routes improvements to the wave (settled heads) or
    /// the frontier heap (unsettled heads). Returns true on improvement.
    fn relax_arc(&mut self, g: &FlowGraph, a: ArcId) -> bool {
        if g.residual_cap(a) == 0 {
            return false;
        }
        let u = g.arc_from(a);
        debug_assert!(self.is_settled(u), "relaxing from unsettled node");
        let rc = g.reduced_cost(a);
        debug_assert!(
            rc > -EPS,
            "negative reduced cost {rc} on arc {a} ({} -> {})",
            g.arc_from(a),
            g.arc_to(a)
        );
        let v = g.arc_to(a);
        self.touch(v);
        let cand = self.alpha[u as usize] + rc.max(0.0);
        if cand + EPS < self.alpha[v as usize] {
            let requeued = self.alpha[v as usize].is_finite();
            self.alpha[v as usize] = cand;
            self.parent[v as usize] = a;
            if self.settled[v as usize] {
                self.wave.push(Reverse((OrdF64::new(cand), v)));
            } else {
                self.counters.decrease_keys += u64::from(requeued);
                self.fpush(cand, v);
            }
            true
        } else {
            false
        }
    }

    /// Relaxes all residual out-arcs of settled node `u` by walking the
    /// graph's intrusive arc chain — no allocation, no re-indexing.
    ///
    /// This is the settle loop's inner loop, so unlike the generic
    /// [`Self::relax_arc`] it hoists the tail's α and τ out of the walk:
    /// per arc it touches only the `next`/`res`/`cost`/`to` columns at `a`
    /// plus the head's τ — never the paired arc `a ^ 1` the generic path
    /// reads to recover the tail.
    fn relax_out(&mut self, g: &FlowGraph, u: NodeId) {
        debug_assert!(self.is_settled(u), "relaxing from unsettled node");
        let alpha_u = self.alpha[u as usize];
        let tau_u = g.tau(u);
        let mut a = g.first_arc(u);
        while a != NO_ARC {
            let next = g.next_arc(a);
            if g.residual_cap(a) != 0 {
                let v = g.arc_to(a);
                let rc = g.arc_cost(a) - tau_u + g.tau(v);
                debug_assert!(rc > -EPS, "negative reduced cost {rc} on arc {a}");
                self.touch(v);
                let cand = alpha_u + rc.max(0.0);
                if cand + EPS < self.alpha[v as usize] {
                    let requeued = self.alpha[v as usize].is_finite();
                    self.alpha[v as usize] = cand;
                    self.parent[v as usize] = a;
                    if self.settled[v as usize] {
                        self.wave.push(Reverse((OrdF64::new(cand), v)));
                    } else {
                        self.counters.decrease_keys += u64::from(requeued);
                        self.fpush(cand, v);
                    }
                }
            }
            a = next;
        }
    }

    /// Processes the re-relaxation wave (`Hf`) until empty: every improved
    /// settled node gets its out-arcs re-relaxed, transitively.
    fn propagate(&mut self, g: &FlowGraph) {
        while let Some(Reverse((key, u))) = self.wave.pop() {
            if key.get() > self.alpha[u as usize] + EPS {
                continue; // stale wave entry
            }
            self.relax_out(g, u);
        }
    }

    /// Runs until `target` is settled (returns immediately if it already
    /// is). Returns `α(target)`, or `None` if the target is unreachable in
    /// the current residual graph.
    pub fn run_until(&mut self, g: &FlowGraph, target: NodeId) -> Option<f64> {
        self.run_until_ctx(g, target, None)
            .expect("no context, no abort")
    }

    /// [`DijkstraState::run_until`] under a cooperative [`QueryContext`]:
    /// the settle loop polls `ctx` every few dozen iterations and
    /// unwinds with a typed [`Aborted`] on cancellation or an expired
    /// deadline — so a CPU-bound search on a large graph cannot overshoot
    /// its deadline even when it touches no page at all. The state is left
    /// consistent (settled prefix plus frontier); an aborted computation may
    /// simply be dropped, or resumed if the caller clears the abort source.
    pub fn run_until_ctx(
        &mut self,
        g: &FlowGraph,
        target: NodeId,
        ctx: Option<&QueryContext>,
    ) -> Result<Option<f64>, Aborted> {
        self.ensure(g.num_nodes());
        if self.is_settled(target) {
            return Ok(Some(self.alpha(target)));
        }
        let mut until_poll = 0u32;
        loop {
            // Poll before de-heaping so an abort leaves the frontier intact.
            poll(ctx, &mut until_poll)?;
            let Some((key, u)) = self.fpop() else {
                return Ok(None);
            };
            // Frontier entries are always fresh (pushed after `touch`), so
            // the per-epoch arrays are directly valid here.
            let ui = u as usize;
            if self.settled[ui] || key > self.alpha[ui] + EPS {
                continue; // settled already, or stale key
            }
            self.settled[ui] = true;
            self.settled_list.push(u);
            if u == target {
                return Ok(Some(self.alpha[ui]));
            }
            self.relax_out(g, u);
            self.propagate(g);
        }
    }

    /// PUA (Algorithm 5): after edge `e` was added to the graph, propagate
    /// any distance improvements through the settled region.
    ///
    /// If the forward arc's tail is not settled the new edge will be relaxed
    /// normally when (if) the tail settles, so there is nothing to do.
    pub fn pua_insert_edge(&mut self, g: &FlowGraph, e: u32) {
        self.ensure(g.num_nodes());
        let fwd: ArcId = 2 * e;
        let q = g.arc_from(fwd);
        if !self.is_settled(q) {
            return;
        }
        self.relax_arc(g, fwd);
        self.propagate(g);
    }

    /// Settles every node whose distance is strictly below the sink's
    /// current α. Called after PUA so the settled set again equals
    /// `{v : α(v) < α(t)} ∪ {t, …}`, which the potential update relies on.
    ///
    /// # Panics
    /// Debug-asserts that the sink is settled.
    pub fn drain_below_sink(&mut self, g: &FlowGraph, t: NodeId) {
        self.drain_below_sink_ctx(g, t, None)
            .expect("no context, no abort")
    }

    /// [`DijkstraState::drain_below_sink`] with the same cooperative
    /// [`QueryContext`] polling as [`DijkstraState::run_until_ctx`].
    pub fn drain_below_sink_ctx(
        &mut self,
        g: &FlowGraph,
        t: NodeId,
        ctx: Option<&QueryContext>,
    ) -> Result<(), Aborted> {
        debug_assert!(self.is_settled(t), "drain requires a settled sink");
        self.propagate(g);
        let mut until_poll = 0u32;
        loop {
            poll(ctx, &mut until_poll)?;
            // The bound can shrink while draining (a drained node may relax
            // an arc into t through the wave), so re-read it every step.
            let bound = self.alpha[t as usize];
            let Some((kbits, _)) = self.frontier.peek_min() else {
                return Ok(());
            };
            if f64::from_bits(kbits) + EPS >= bound {
                return Ok(());
            }
            let Some((key, u)) = self.fpop() else {
                return Ok(());
            };
            let ui = u as usize;
            if self.settled[ui] || key > self.alpha[ui] + EPS {
                continue;
            }
            self.settled[ui] = true;
            self.settled_list.push(u);
            self.relax_out(g, u);
            self.propagate(g);
        }
    }

    /// Walks parent arcs from `t` back to the source, returning the arcs in
    /// path order (source first).
    pub fn extract_path(&self, g: &FlowGraph, t: NodeId) -> Vec<ArcId> {
        let mut arcs = Vec::new();
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            arcs.push(a);
            v = g.arc_from(a);
        }
        arcs.reverse();
        arcs
    }

    /// Augments one unit of flow along the recorded shortest path to `t`
    /// ("reversing" the path's edges in the paper's terms, Algorithm 1
    /// lines 4–7).
    pub fn augment_unit(&self, g: &mut FlowGraph, t: NodeId) {
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            g.push_flow(a, 1);
            v = g.arc_from(a);
        }
    }

    /// Augments as many units along the recorded shortest path to `t` as
    /// its bottleneck residual capacity admits, capped at `limit`; returns
    /// the amount pushed.
    ///
    /// Every unit on one shortest path has the same cost, and pushing the
    /// full bottleneck keeps SSPA's invariant intact (the saturated arc
    /// leaves the residual graph, the reverse arcs enter with reduced cost
    /// 0 after the potential update), so bulk augmentation yields the same
    /// optimum as unit augmentation with far fewer searches on weighted
    /// instances — the lever the coreset tier's aggregated customer units
    /// rely on.
    pub fn augment_bottleneck(&self, g: &mut FlowGraph, t: NodeId, limit: u32) -> u32 {
        let mut bottleneck = limit;
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            bottleneck = bottleneck.min(g.residual_cap(a));
            v = g.arc_from(a);
        }
        debug_assert!(bottleneck > 0, "augmenting along a saturated path");
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            g.push_flow(a, bottleneck);
            v = g.arc_from(a);
        }
        bottleneck
    }
}

impl Default for DijkstraState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 → 1 → 2 → 3 with unit capacities plus a direct 0 → 3 edge.
    fn diamond() -> FlowGraph {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 1.0); // e0
        g.add_edge(1, 2, 1, 1.0); // e1
        g.add_edge(2, 3, 1, 1.0); // e2
        g.add_edge(0, 3, 1, 10.0); // e3
        g
    }

    #[test]
    fn shortest_path_simple_chain() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(3.0));
        let path = d.extract_path(&g, 3);
        assert_eq!(path, vec![0, 2, 4]); // forward arcs of e0, e1, e2
    }

    #[test]
    fn both_frontiers_agree_on_the_diamond() {
        for kind in [FrontierKind::Radix, FrontierKind::Binary] {
            let g = diamond();
            let mut d = DijkstraState::with_frontier(kind);
            d.init(&g, 0);
            assert_eq!(d.run_until(&g, 3), Some(3.0), "{kind:?}");
            assert_eq!(d.extract_path(&g, 3), vec![0, 2, 4], "{kind:?}");
            let c = d.heap_counters();
            assert!(c.pushes > 0 && c.pops > 0);
        }
    }

    #[test]
    fn run_until_is_idempotent_once_settled() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(3.0));
        assert_eq!(d.run_until(&g, 3), Some(3.0));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 2), None);
    }

    #[test]
    fn saturated_edges_are_skipped() {
        let mut g = diamond();
        g.push_flow(0, 1); // saturate 0 -> 1
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(10.0), "must use the direct edge");
    }

    #[test]
    fn augment_reverses_path() {
        let mut g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        d.augment_unit(&mut g, 3);
        assert_eq!(g.edge_flow(0), 1);
        assert_eq!(g.edge_flow(1), 1);
        assert_eq!(g.edge_flow(2), 1);
        assert_eq!(g.edge_flow(3), 0);
        // Residual arcs now allow the reverse walk.
        assert_eq!(g.residual_cap(1), 1); // reverse of e0
    }

    #[test]
    fn epochs_isolate_runs() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        assert!(d.is_settled(1));
        d.init(&g, 2);
        assert!(!d.is_settled(1), "previous run's state must be invisible");
        assert_eq!(d.alpha(0), f64::INFINITY);
        assert_eq!(d.run_until(&g, 3), Some(1.0));
    }

    #[test]
    fn settled_list_matches_flags_and_order() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        for &v in d.settled_nodes() {
            assert!(d.is_settled(v));
        }
        let dists: Vec<f64> = d.settled_nodes().iter().map(|&v| d.alpha(v)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pua_improves_distances_after_edge_insert() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 5.0);
        g.add_edge(1, 2, 1, 5.0);
        g.add_edge(2, 3, 1, 0.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(10.0));
        // New edge 1 -> 3 with cost 1: path 0->1->3 costs 6.
        let e = g.add_edge(1, 3, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(3), 6.0, "PUA must propagate the improvement");
        d.drain_below_sink(&g, 3);
        let path = d.extract_path(&g, 3);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn pua_improvement_propagates_through_settled_chain() {
        // After 0→1→2→3 settles (cost 3 each hop), a cheap edge 0→2 must
        // transitively improve node 3 as well.
        let mut g = FlowGraph::with_nodes(5);
        g.add_edge(0, 1, 1, 3.0);
        g.add_edge(1, 2, 1, 3.0);
        g.add_edge(2, 3, 1, 3.0);
        g.add_edge(3, 4, 1, 0.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 4), Some(9.0));
        let e = g.add_edge(0, 2, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(2), 1.0);
        assert_eq!(d.alpha(3), 4.0, "wave must reach node 3");
        assert_eq!(d.alpha(4), 4.0, "and the sink");
    }

    #[test]
    fn pua_ignores_edges_from_unsettled_tails() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 1.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 1).unwrap();
        // Node 2 was never reached; an edge out of it must be a no-op.
        let e = g.add_edge(2, 3, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(3), f64::INFINITY);
    }

    #[test]
    fn drain_settles_nodes_below_new_sink_distance() {
        // Frontier node 3 (α=9) must be settled once the sink improves past
        // it... here the sink stays at 11 and 3 sits below it.
        let mut g = FlowGraph::with_nodes(5);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 3, 1, 9.0);
        g.add_edge(1, 4, 1, 10.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 4), Some(11.0));
        assert!(d.is_settled(3), "3 settles before the sink at α=9");
        // Insert an edge that improves nothing; drain is a no-op.
        let e = g.add_edge(1, 4, 1, 50.0);
        d.pua_insert_edge(&g, e);
        d.drain_below_sink(&g, 4);
        assert_eq!(d.alpha(4), 11.0);
    }

    #[test]
    fn pua_below_minimum_push_falls_back_to_binary() {
        // Settle a chain, then insert an edge whose relaxation pushes a
        // frontier key *below* the last popped minimum: the radix queue must
        // migrate to the binary heap instead of misfiling, and the counters
        // must record exactly one fallback.
        let mut g = FlowGraph::with_nodes(5);
        g.add_edge(0, 1, 1, 2.0); // settled at 2
        g.add_edge(1, 2, 1, 6.0); // settled at 8 (last popped minimum)
        g.add_edge(0, 3, 1, 7.0); // frontier... settled at 7 before 8
        g.add_edge(1, 4, 1, 20.0); // far frontier node, stays queued
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 2), Some(8.0));
        assert_eq!(d.heap_counters().radix_fallbacks, 0);
        // New edge 0 → 4 with cost 3: candidate key 3 < last minimum 8.
        let e = g.add_edge(0, 4, 1, 3.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.heap_counters().radix_fallbacks, 1);
        assert_eq!(d.alpha(4), 3.0);
        // The migrated frontier still settles correctly.
        assert_eq!(d.run_until(&g, 4), Some(3.0));
    }

    #[test]
    fn aborted_context_stops_the_settle_loop() {
        use cca_storage::AbortReason;
        let g = diamond();
        let mut d = DijkstraState::new();
        let ctx = QueryContext::new();
        ctx.cancel();
        d.init(&g, 0);
        let err = d.run_until_ctx(&g, 3, Some(&ctx)).unwrap_err();
        assert_eq!(err.reason, AbortReason::Cancelled);
        // An expired deadline aborts too — no page access involved.
        let late = QueryContext::new()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        d.init(&g, 0);
        assert_eq!(
            d.run_until_ctx(&g, 3, Some(&late)).unwrap_err().reason,
            AbortReason::DeadlineExceeded
        );
        // A clean context is invisible: same result as the plain entry point.
        let clean = QueryContext::new();
        d.init(&g, 0);
        assert_eq!(d.run_until_ctx(&g, 3, Some(&clean)), Ok(Some(3.0)));
        assert_eq!(
            d.drain_below_sink_ctx(&g, 3, Some(&clean)),
            Ok(()),
            "drain under a clean context is a no-op here"
        );
    }

    #[test]
    fn resume_after_unreachable_picks_up_new_edges() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 2.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), None, "sink not yet connected");
        let e = g.add_edge(1, 3, 1, 4.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.run_until(&g, 3), Some(6.0));
    }
}
