//! Dijkstra over reduced costs, with resumable state and the Path Update
//! Algorithm (PUA, Algorithm 5).
//!
//! SSPA computes each augmenting path with Dijkstra on reduced costs (§2.2).
//! The incremental algorithms additionally need to *resume* a computation
//! after inserting a new edge instead of restarting (§3.4.1):
//! [`DijkstraState::pua_insert_edge`] runs the bounded relaxation wave of
//! Algorithm 5 and [`DijkstraState::drain_below_sink`] re-settles any node
//! whose corrected distance dropped below the sink's, so the settled set
//! always equals `{v : α(v) < α(t)}` plus the sink — the precondition of the
//! potential update.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cca_geo::OrdF64;
use cca_storage::{Aborted, QueryContext};

use crate::graph::{ArcId, FlowGraph, NodeId, NO_ARC};

/// Tolerance for floating-point noise in reduced costs. Distances are O(10³)
/// (the normalised world), so 1e-7 absolute slack is ~12 decimal digits of
/// headroom below the signal.
pub const EPS: f64 = 1e-7;

/// Inner-loop iterations between [`QueryContext`] polls in the
/// context-aware entry points (Dijkstra settles, Hungarian column scans).
/// A poll is an atomic load plus (at worst) an `Instant::now`; at
/// 64-iteration stride its cost is noise against the loop body, yet a
/// deadline or cancellation is still observed within microseconds — the
/// CPU-bound analogue of the storage layer's poll-before-every-page-access.
const CTX_POLL_STRIDE: u32 = 64;

/// Strided cooperative poll: checks `ctx` every [`CTX_POLL_STRIDE`] calls
/// (counting down through `counter`), erroring with the typed [`Aborted`].
#[inline]
pub(crate) fn poll(ctx: Option<&QueryContext>, counter: &mut u32) -> Result<(), Aborted> {
    if let Some(ctx) = ctx {
        if *counter == 0 {
            *counter = CTX_POLL_STRIDE;
            ctx.check()?;
        }
        *counter -= 1;
    }
    Ok(())
}

/// Resumable single-source shortest-path state over a [`FlowGraph`].
///
/// Node bookkeeping uses *epochs* so `init` is O(1) amortised rather than
/// O(|V|): an entry is valid only if its epoch matches the current run's.
pub struct DijkstraState {
    alpha: Vec<f64>,
    parent: Vec<ArcId>,
    settled: Vec<bool>,
    epoch_of: Vec<u32>,
    epoch: u32,
    /// Frontier heap (`Hd` in the paper); lazy decrease-key.
    heap: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    /// Re-relaxation wave over improved *settled* nodes (`Hf`, Algorithm 5).
    wave: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    /// Settled nodes of the current run, in settle order. α values must be
    /// re-read at use time — PUA may improve them after settling.
    settled_list: Vec<NodeId>,
    source: NodeId,
}

impl DijkstraState {
    pub fn new() -> Self {
        DijkstraState {
            alpha: Vec::new(),
            parent: Vec::new(),
            settled: Vec::new(),
            epoch_of: Vec::new(),
            epoch: 0,
            heap: BinaryHeap::new(),
            wave: BinaryHeap::new(),
            settled_list: Vec::new(),
            source: 0,
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.alpha.len() < n {
            self.alpha.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_ARC);
            self.settled.resize(n, false);
            self.epoch_of.resize(n, 0);
        }
    }

    #[inline]
    fn fresh(&self, v: NodeId) -> bool {
        self.epoch_of[v as usize] == self.epoch
    }

    fn touch(&mut self, v: NodeId) {
        let i = v as usize;
        if self.epoch_of[i] != self.epoch {
            self.epoch_of[i] = self.epoch;
            self.alpha[i] = f64::INFINITY;
            self.parent[i] = NO_ARC;
            self.settled[i] = false;
        }
    }

    /// Starts a new computation from `source`.
    pub fn init(&mut self, g: &FlowGraph, source: NodeId) {
        self.ensure(g.num_nodes());
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: hard reset keeps epoch logic sound.
            self.epoch_of.iter_mut().for_each(|e| *e = 0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.wave.clear();
        self.settled_list.clear();
        self.source = source;
        self.touch(source);
        self.alpha[source as usize] = 0.0;
        self.heap.push(Reverse((OrdF64::new(0.0), source)));
    }

    /// α(v), or `+∞` if unreached in this run.
    #[inline]
    pub fn alpha(&self, v: NodeId) -> f64 {
        if (v as usize) < self.alpha.len() && self.fresh(v) {
            self.alpha[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// True if `v` has been settled (de-heaped) in this run.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        (v as usize) < self.settled.len() && self.fresh(v) && self.settled[v as usize]
    }

    /// The arc through which `v` was reached, or `NO_ARC`.
    #[inline]
    pub fn parent_arc(&self, v: NodeId) -> ArcId {
        if (v as usize) < self.parent.len() && self.fresh(v) {
            self.parent[v as usize]
        } else {
            NO_ARC
        }
    }

    /// Settled nodes of the current run (the "visited nodes" of Algorithm 1
    /// lines 8–9). Read current α via [`DijkstraState::alpha`].
    pub fn settled_nodes(&self) -> &[NodeId] {
        &self.settled_list
    }

    /// Relaxes one arc; routes improvements to the wave (settled heads) or
    /// the frontier heap (unsettled heads). Returns true on improvement.
    fn relax_arc(&mut self, g: &FlowGraph, a: ArcId) -> bool {
        if g.residual_cap(a) == 0 {
            return false;
        }
        let u = g.arc_from(a);
        debug_assert!(self.is_settled(u), "relaxing from unsettled node");
        let rc = g.reduced_cost(a);
        debug_assert!(
            rc > -EPS,
            "negative reduced cost {rc} on arc {a} ({} -> {})",
            g.arc_from(a),
            g.arc_to(a)
        );
        let v = g.arc_to(a);
        self.touch(v);
        let cand = self.alpha[u as usize] + rc.max(0.0);
        if cand + EPS < self.alpha[v as usize] {
            self.alpha[v as usize] = cand;
            self.parent[v as usize] = a;
            let entry = Reverse((OrdF64::new(cand), v));
            if self.settled[v as usize] {
                self.wave.push(entry);
            } else {
                self.heap.push(entry);
            }
            true
        } else {
            false
        }
    }

    /// Relaxes all residual out-arcs of settled node `u`.
    fn relax_out(&mut self, g: &FlowGraph, u: NodeId) {
        // `arcs_from` is cheap to re-index; copying the slice would allocate.
        let n = g.arcs_from(u).len();
        for i in 0..n {
            let a = g.arcs_from(u)[i];
            self.relax_arc(g, a);
        }
    }

    /// Processes the re-relaxation wave (`Hf`) until empty: every improved
    /// settled node gets its out-arcs re-relaxed, transitively.
    fn propagate(&mut self, g: &FlowGraph) {
        while let Some(Reverse((key, u))) = self.wave.pop() {
            if key.get() > self.alpha[u as usize] + EPS {
                continue; // stale wave entry
            }
            self.relax_out(g, u);
        }
    }

    /// Runs until `target` is settled (returns immediately if it already
    /// is). Returns `α(target)`, or `None` if the target is unreachable in
    /// the current residual graph.
    pub fn run_until(&mut self, g: &FlowGraph, target: NodeId) -> Option<f64> {
        self.run_until_ctx(g, target, None)
            .expect("no context, no abort")
    }

    /// [`DijkstraState::run_until`] under a cooperative [`QueryContext`]:
    /// the settle loop polls `ctx` every few dozen iterations and
    /// unwinds with a typed [`Aborted`] on cancellation or an expired
    /// deadline — so a CPU-bound search on a large graph cannot overshoot
    /// its deadline even when it touches no page at all. The state is left
    /// consistent (settled prefix plus frontier); an aborted computation may
    /// simply be dropped, or resumed if the caller clears the abort source.
    pub fn run_until_ctx(
        &mut self,
        g: &FlowGraph,
        target: NodeId,
        ctx: Option<&QueryContext>,
    ) -> Result<Option<f64>, Aborted> {
        self.ensure(g.num_nodes());
        if self.is_settled(target) {
            return Ok(Some(self.alpha(target)));
        }
        let mut until_poll = 0u32;
        loop {
            // Poll before de-heaping so an abort leaves the frontier intact.
            poll(ctx, &mut until_poll)?;
            let Some(Reverse((key, u))) = self.heap.pop() else {
                return Ok(None);
            };
            // Heap entries are always fresh (pushed after `touch`), so the
            // per-epoch arrays are directly valid here.
            let ui = u as usize;
            if self.settled[ui] || key.get() > self.alpha[ui] + EPS {
                continue; // settled already, or stale key
            }
            self.settled[ui] = true;
            self.settled_list.push(u);
            if u == target {
                return Ok(Some(self.alpha[ui]));
            }
            self.relax_out(g, u);
            self.propagate(g);
        }
    }

    /// PUA (Algorithm 5): after edge `e` was added to the graph, propagate
    /// any distance improvements through the settled region.
    ///
    /// If the forward arc's tail is not settled the new edge will be relaxed
    /// normally when (if) the tail settles, so there is nothing to do.
    pub fn pua_insert_edge(&mut self, g: &FlowGraph, e: u32) {
        self.ensure(g.num_nodes());
        let fwd: ArcId = 2 * e;
        let q = g.arc_from(fwd);
        if !self.is_settled(q) {
            return;
        }
        self.relax_arc(g, fwd);
        self.propagate(g);
    }

    /// Settles every node whose distance is strictly below the sink's
    /// current α. Called after PUA so the settled set again equals
    /// `{v : α(v) < α(t)} ∪ {t, …}`, which the potential update relies on.
    ///
    /// # Panics
    /// Debug-asserts that the sink is settled.
    pub fn drain_below_sink(&mut self, g: &FlowGraph, t: NodeId) {
        self.drain_below_sink_ctx(g, t, None)
            .expect("no context, no abort")
    }

    /// [`DijkstraState::drain_below_sink`] with the same cooperative
    /// [`QueryContext`] polling as [`DijkstraState::run_until_ctx`].
    pub fn drain_below_sink_ctx(
        &mut self,
        g: &FlowGraph,
        t: NodeId,
        ctx: Option<&QueryContext>,
    ) -> Result<(), Aborted> {
        debug_assert!(self.is_settled(t), "drain requires a settled sink");
        self.propagate(g);
        let mut until_poll = 0u32;
        loop {
            poll(ctx, &mut until_poll)?;
            // The bound can shrink while draining (a drained node may relax
            // an arc into t through the wave), so re-read it every step.
            let bound = self.alpha[t as usize];
            let Some(&Reverse((key, u))) = self.heap.peek() else {
                return Ok(());
            };
            if key.get() + EPS >= bound {
                return Ok(());
            }
            self.heap.pop();
            let ui = u as usize;
            if self.settled[ui] || key.get() > self.alpha[ui] + EPS {
                continue;
            }
            self.settled[ui] = true;
            self.settled_list.push(u);
            self.relax_out(g, u);
            self.propagate(g);
        }
    }

    /// Walks parent arcs from `t` back to the source, returning the arcs in
    /// path order (source first).
    pub fn extract_path(&self, g: &FlowGraph, t: NodeId) -> Vec<ArcId> {
        let mut arcs = Vec::new();
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            arcs.push(a);
            v = g.arc_from(a);
        }
        arcs.reverse();
        arcs
    }

    /// Augments one unit of flow along the recorded shortest path to `t`
    /// ("reversing" the path's edges in the paper's terms, Algorithm 1
    /// lines 4–7).
    pub fn augment_unit(&self, g: &mut FlowGraph, t: NodeId) {
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            g.push_flow(a, 1);
            v = g.arc_from(a);
        }
    }

    /// Augments as many units along the recorded shortest path to `t` as
    /// its bottleneck residual capacity admits, capped at `limit`; returns
    /// the amount pushed.
    ///
    /// Every unit on one shortest path has the same cost, and pushing the
    /// full bottleneck keeps SSPA's invariant intact (the saturated arc
    /// leaves the residual graph, the reverse arcs enter with reduced cost
    /// 0 after the potential update), so bulk augmentation yields the same
    /// optimum as unit augmentation with far fewer searches on weighted
    /// instances — the lever the coreset tier's aggregated customer units
    /// rely on.
    pub fn augment_bottleneck(&self, g: &mut FlowGraph, t: NodeId, limit: u32) -> u32 {
        let mut bottleneck = limit;
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            assert_ne!(a, NO_ARC, "no path recorded to node {v}");
            bottleneck = bottleneck.min(g.residual_cap(a));
            v = g.arc_from(a);
        }
        debug_assert!(bottleneck > 0, "augmenting along a saturated path");
        let mut v = t;
        while v != self.source {
            let a = self.parent_arc(v);
            g.push_flow(a, bottleneck);
            v = g.arc_from(a);
        }
        bottleneck
    }
}

impl Default for DijkstraState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 → 1 → 2 → 3 with unit capacities plus a direct 0 → 3 edge.
    fn diamond() -> FlowGraph {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 1.0); // e0
        g.add_edge(1, 2, 1, 1.0); // e1
        g.add_edge(2, 3, 1, 1.0); // e2
        g.add_edge(0, 3, 1, 10.0); // e3
        g
    }

    #[test]
    fn shortest_path_simple_chain() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(3.0));
        let path = d.extract_path(&g, 3);
        assert_eq!(path, vec![0, 2, 4]); // forward arcs of e0, e1, e2
    }

    #[test]
    fn run_until_is_idempotent_once_settled() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(3.0));
        assert_eq!(d.run_until(&g, 3), Some(3.0));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 2), None);
    }

    #[test]
    fn saturated_edges_are_skipped() {
        let mut g = diamond();
        g.push_flow(0, 1); // saturate 0 -> 1
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(10.0), "must use the direct edge");
    }

    #[test]
    fn augment_reverses_path() {
        let mut g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        d.augment_unit(&mut g, 3);
        assert_eq!(g.edge_flow(0), 1);
        assert_eq!(g.edge_flow(1), 1);
        assert_eq!(g.edge_flow(2), 1);
        assert_eq!(g.edge_flow(3), 0);
        // Residual arcs now allow the reverse walk.
        assert_eq!(g.residual_cap(1), 1); // reverse of e0
    }

    #[test]
    fn epochs_isolate_runs() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        assert!(d.is_settled(1));
        d.init(&g, 2);
        assert!(!d.is_settled(1), "previous run's state must be invisible");
        assert_eq!(d.alpha(0), f64::INFINITY);
        assert_eq!(d.run_until(&g, 3), Some(1.0));
    }

    #[test]
    fn settled_list_matches_flags_and_order() {
        let g = diamond();
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 3).unwrap();
        for &v in d.settled_nodes() {
            assert!(d.is_settled(v));
        }
        let dists: Vec<f64> = d.settled_nodes().iter().map(|&v| d.alpha(v)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pua_improves_distances_after_edge_insert() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 5.0);
        g.add_edge(1, 2, 1, 5.0);
        g.add_edge(2, 3, 1, 0.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), Some(10.0));
        // New edge 1 -> 3 with cost 1: path 0->1->3 costs 6.
        let e = g.add_edge(1, 3, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(3), 6.0, "PUA must propagate the improvement");
        d.drain_below_sink(&g, 3);
        let path = d.extract_path(&g, 3);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn pua_improvement_propagates_through_settled_chain() {
        // After 0→1→2→3 settles (cost 3 each hop), a cheap edge 0→2 must
        // transitively improve node 3 as well.
        let mut g = FlowGraph::with_nodes(5);
        g.add_edge(0, 1, 1, 3.0);
        g.add_edge(1, 2, 1, 3.0);
        g.add_edge(2, 3, 1, 3.0);
        g.add_edge(3, 4, 1, 0.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 4), Some(9.0));
        let e = g.add_edge(0, 2, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(2), 1.0);
        assert_eq!(d.alpha(3), 4.0, "wave must reach node 3");
        assert_eq!(d.alpha(4), 4.0, "and the sink");
    }

    #[test]
    fn pua_ignores_edges_from_unsettled_tails() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 1.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        d.run_until(&g, 1).unwrap();
        // Node 2 was never reached; an edge out of it must be a no-op.
        let e = g.add_edge(2, 3, 1, 1.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.alpha(3), f64::INFINITY);
    }

    #[test]
    fn drain_settles_nodes_below_new_sink_distance() {
        // Frontier node 3 (α=9) must be settled once the sink improves past
        // it... here the sink stays at 11 and 3 sits below it.
        let mut g = FlowGraph::with_nodes(5);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 3, 1, 9.0);
        g.add_edge(1, 4, 1, 10.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 4), Some(11.0));
        assert!(d.is_settled(3), "3 settles before the sink at α=9");
        // Insert an edge that improves nothing; drain is a no-op.
        let e = g.add_edge(1, 4, 1, 50.0);
        d.pua_insert_edge(&g, e);
        d.drain_below_sink(&g, 4);
        assert_eq!(d.alpha(4), 11.0);
    }

    #[test]
    fn aborted_context_stops_the_settle_loop() {
        use cca_storage::AbortReason;
        let g = diamond();
        let mut d = DijkstraState::new();
        let ctx = QueryContext::new();
        ctx.cancel();
        d.init(&g, 0);
        let err = d.run_until_ctx(&g, 3, Some(&ctx)).unwrap_err();
        assert_eq!(err.reason, AbortReason::Cancelled);
        // An expired deadline aborts too — no page access involved.
        let late = QueryContext::new()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        d.init(&g, 0);
        assert_eq!(
            d.run_until_ctx(&g, 3, Some(&late)).unwrap_err().reason,
            AbortReason::DeadlineExceeded
        );
        // A clean context is invisible: same result as the plain entry point.
        let clean = QueryContext::new();
        d.init(&g, 0);
        assert_eq!(d.run_until_ctx(&g, 3, Some(&clean)), Ok(Some(3.0)));
        assert_eq!(
            d.drain_below_sink_ctx(&g, 3, Some(&clean)),
            Ok(()),
            "drain under a clean context is a no-op here"
        );
    }

    #[test]
    fn resume_after_unreachable_picks_up_new_edges() {
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 2.0);
        let mut d = DijkstraState::new();
        d.init(&g, 0);
        assert_eq!(d.run_until(&g, 3), None, "sink not yet connected");
        let e = g.add_edge(1, 3, 1, 4.0);
        d.pua_insert_edge(&g, e);
        assert_eq!(d.run_until(&g, 3), Some(6.0));
    }
}
