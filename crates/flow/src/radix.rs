//! Monotone radix (bucket) priority queue for Dijkstra frontiers.
//!
//! Dijkstra settles nodes in non-decreasing key order, so its frontier queue
//! is *monotone*: no push carries a key below the last popped minimum. A
//! radix heap exploits that — keys go into one of 65 buckets indexed by the
//! position of the most significant bit in which the key differs from the
//! last popped minimum, pops redistribute one bucket, and every key moves
//! O(64) times total. Per-operation cost is a handful of instructions and a
//! couple of cache lines, against the pointer-chasing `log n` sift of a
//! binary heap.
//!
//! Keys are the **u64 bit patterns** of non-negative `f64` distances:
//! IEEE-754 ordering on non-negative floats equals unsigned integer ordering
//! of their bit patterns, so `f64::to_bits` is an order-preserving (and
//! order-reflecting) embedding — no precision is lost and no comparison
//! changes.
//!
//! The monotonicity assumption can break in this codebase: PUA's
//! re-relaxation wave (Algorithm 5) may improve a settled node and then push
//! frontier keys *below* the last popped minimum, and `EPS`-tolerant settles
//! can admit candidates a hair under it. [`RadixQueue::push`] therefore
//! reports such keys instead of misfiling them, and the frontier wrapper in
//! `dijkstra` migrates the run to a plain binary heap — same semantics,
//! no lost entries. Equivalence between the two is pinned by proptest in
//! `tests/frontier_equivalence.rs`.

use crate::graph::NodeId;

/// Number of buckets: bucket 0 holds keys equal to the last popped minimum,
/// bucket `b ≥ 1` keys whose highest differing bit from it is `b − 1`.
const BUCKETS: usize = 65;

/// A monotone bucket queue over `(u64 key, NodeId)` entries.
///
/// Duplicate entries per node are fine (lazy decrease-key, exactly like the
/// `BinaryHeap` it replaces); stale entries are filtered by the caller.
pub struct RadixQueue {
    buckets: [Vec<(u64, NodeId)>; BUCKETS],
    /// The last popped minimum (0 before any pop): the reference point
    /// bucket indices are computed against. Never decreases.
    last: u64,
    len: usize,
    /// Reusable scratch for redistribution, so steady-state operation
    /// allocates nothing.
    scratch: Vec<(u64, NodeId)>,
}

impl RadixQueue {
    pub fn new() -> Self {
        RadixQueue {
            buckets: std::array::from_fn(|_| Vec::new()),
            last: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Bucket for `key` relative to the current reference `last`.
    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        debug_assert!(key >= self.last);
        // 0 if equal, else 64 − clz(xor) = 1 + index of highest differing bit.
        (64 - (key ^ self.last).leading_zeros()) as usize
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes an entry. Errors with the entry if `key` lies below the last
    /// popped minimum — the monotonicity contract is broken and the caller
    /// must fall back to a comparison heap.
    #[inline]
    pub fn push(&mut self, key: u64, node: NodeId) -> Result<(), (u64, NodeId)> {
        if key < self.last {
            return Err((key, node));
        }
        let b = self.bucket_of(key);
        self.buckets[b].push((key, node));
        self.len += 1;
        Ok(())
    }

    /// Ensures bucket 0 holds the queue minimum (redistributing the first
    /// non-empty bucket if needed). Requires a non-empty queue.
    fn pull_to_front(&mut self) {
        if !self.buckets[0].is_empty() {
            return;
        }
        let b = self
            .buckets
            .iter()
            .position(|v| !v.is_empty())
            .expect("pull_to_front on empty queue");
        // The new reference is this bucket's minimum; relative to it every
        // entry lands in a strictly smaller bucket (the minimum in bucket 0),
        // which is what bounds total moves per key at O(64).
        let min = self.buckets[b]
            .iter()
            .map(|&(k, _)| k)
            .min()
            .expect("non-empty bucket");
        self.last = min;
        std::mem::swap(&mut self.scratch, &mut self.buckets[b]);
        for &(k, n) in &self.scratch {
            let nb = self.bucket_of(k);
            debug_assert!(nb < b);
            self.buckets[nb].push((k, n));
        }
        self.scratch.clear();
    }

    /// Pops a minimum entry. Ties pop in unspecified order.
    pub fn pop(&mut self) -> Option<(u64, NodeId)> {
        if self.len == 0 {
            return None;
        }
        self.pull_to_front();
        let entry = self.buckets[0].pop().expect("bucket 0 filled");
        self.len -= 1;
        Some(entry)
    }

    /// The current minimum key without removing it (redistributes like a
    /// pop, hence `&mut`).
    pub fn peek_min(&mut self) -> Option<(u64, NodeId)> {
        if self.len == 0 {
            return None;
        }
        self.pull_to_front();
        self.buckets[0].last().copied()
    }

    /// Empties the queue and resets the reference point, keeping every
    /// bucket's allocation for reuse.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = 0;
        self.len = 0;
    }

    /// Drains all entries (in no particular order) into `sink` — used by the
    /// fallback migration to a binary heap.
    pub fn drain_into(&mut self, mut sink: impl FnMut(u64, NodeId)) {
        for b in &mut self.buckets {
            for (k, n) in b.drain(..) {
                sink(k, n);
            }
        }
        self.len = 0;
    }
}

impl Default for RadixQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_nondecreasing_key_order() {
        let mut q = RadixQueue::new();
        let keys = [5.0f64, 1.0, 3.5, 0.0, 2.25, 1.0, 7.75, 0.5];
        for (i, k) in keys.iter().enumerate() {
            q.push(k.to_bits(), i as NodeId).unwrap();
        }
        assert_eq!(q.len(), keys.len());
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(f64::from_bits(k));
        }
        assert_eq!(popped.len(), keys.len());
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "{popped:?}");
        let mut sorted = keys.to_vec();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_monotone_pushes_stay_ordered() {
        let mut q = RadixQueue::new();
        q.push(1.0f64.to_bits(), 0).unwrap();
        q.push(4.0f64.to_bits(), 1).unwrap();
        assert_eq!(q.pop().unwrap().0, 1.0f64.to_bits());
        // Monotone: new keys ≥ last popped (1.0).
        q.push(2.0f64.to_bits(), 2).unwrap();
        q.push(1.0f64.to_bits(), 3).unwrap(); // equal is allowed
        assert_eq!(q.pop().unwrap().0, 1.0f64.to_bits());
        assert_eq!(q.pop().unwrap().0, 2.0f64.to_bits());
        assert_eq!(q.pop().unwrap().0, 4.0f64.to_bits());
        assert!(q.pop().is_none());
    }

    #[test]
    fn below_reference_push_is_rejected() {
        let mut q = RadixQueue::new();
        q.push(3.0f64.to_bits(), 0).unwrap();
        q.push(5.0f64.to_bits(), 1).unwrap();
        q.pop().unwrap(); // last = 3.0
        let err = q.push(2.0f64.to_bits(), 7).unwrap_err();
        assert_eq!(err, (2.0f64.to_bits(), 7));
        assert_eq!(q.len(), 1, "rejected push must not be counted");
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = RadixQueue::new();
        for k in [9.0f64, 2.0, 6.0] {
            q.push(k.to_bits(), 0).unwrap();
        }
        let peeked = q.peek_min().unwrap();
        assert_eq!(q.pop().unwrap(), peeked);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_resets_reference() {
        let mut q = RadixQueue::new();
        q.push(8.0f64.to_bits(), 0).unwrap();
        q.pop().unwrap(); // last = 8.0
        q.clear();
        assert!(q.is_empty());
        // After clear, small keys are accepted again.
        q.push(0.5f64.to_bits(), 1).unwrap();
        assert_eq!(q.pop().unwrap().0, 0.5f64.to_bits());
    }

    #[test]
    fn drain_moves_every_entry() {
        let mut q = RadixQueue::new();
        for i in 0..10u32 {
            q.push(f64::from(i).to_bits(), i).unwrap();
        }
        q.pop().unwrap();
        let mut drained = Vec::new();
        q.drain_into(|k, n| drained.push((k, n)));
        assert_eq!(drained.len(), 9);
        assert!(q.is_empty());
    }

    proptest::proptest! {
        /// Against a sorted-vec model: any monotone push/pop interleaving
        /// pops the exact multiset of keys in non-decreasing order.
        #[test]
        fn prop_matches_sorted_model(
            ops in proptest::collection::vec((proptest::any::<bool>(), 0u64..1u64 << 53), 1..200),
        ) {
            let mut q = RadixQueue::new();
            let mut model: Vec<u64> = Vec::new();
            let mut last = 0u64;
            for (is_pop, raw) in ops {
                if is_pop {
                    match q.pop() {
                        Some((k, _)) => {
                            model.sort_unstable();
                            let want = model.remove(0);
                            proptest::prop_assert_eq!(k, want);
                            last = k;
                        }
                        None => proptest::prop_assert!(model.is_empty()),
                    }
                } else {
                    // Keep the stream monotone relative to the last pop.
                    let key = last.saturating_add(raw % 1024);
                    q.push(key, 0).unwrap();
                    model.push(key);
                }
            }
        }
    }
}
