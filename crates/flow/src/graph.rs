//! Residual flow graph with paired arcs and node potentials.
//!
//! This is the graph substrate of the paper's §2.1–2.2: nodes are
//! `{s, t} ∪ Q ∪ P`, each logical edge is stored as a forward/backward arc
//! pair, and every node `v` carries a potential `v.τ`. The *reduced cost* of
//! an arc is `w(u,v) = cost(u,v) − τ(u) + τ(v)` exactly as defined in §2.2;
//! the paper's "edge reversal" during augmentation is flow pushed on the arc
//! pair.
//!
//! The graph is deliberately *incremental*: the CCA algorithms start from an
//! (almost) empty edge set `Esub` and call [`FlowGraph::add_edge`] as
//! Theorem 1 demands more edges.

/// Node identifier (dense).
pub type NodeId = u32;

/// Arc identifier. Arcs come in pairs: arc `2e` is the forward arc of edge
/// `e`, arc `2e+1` its reverse.
pub type ArcId = u32;

/// Sentinel for "no arc" (used in parent pointers).
pub const NO_ARC: ArcId = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct ArcData {
    from: NodeId,
    to: NodeId,
    /// Base cost (`dist` for q→p edges, 0 for source/sink edges, negated on
    /// the reverse arc).
    cost: f64,
}

/// The residual graph.
pub struct FlowGraph {
    arcs: Vec<ArcData>,
    /// Capacity per *edge* (forward direction).
    cap: Vec<u32>,
    /// Flow per edge, `0 ≤ flow ≤ cap`.
    flow: Vec<u32>,
    /// Outgoing arc ids per node (both forward and reverse arcs).
    adj: Vec<Vec<ArcId>>,
    /// Node potentials `τ` (§2.2), all zero initially.
    tau: Vec<f64>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FlowGraph {
            arcs: Vec::new(),
            cap: Vec::new(),
            flow: Vec::new(),
            adj: Vec::new(),
            tau: Vec::new(),
        }
    }

    /// Creates a graph with `nodes` pre-allocated nodes.
    pub fn with_nodes(nodes: usize) -> Self {
        let mut g = FlowGraph::new();
        for _ in 0..nodes {
            g.add_node();
        }
        g
    }

    /// Adds a node with potential 0; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::try_from(self.adj.len()).expect("node id overflow");
        self.adj.push(Vec::new());
        self.tau.push(0.0);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of logical edges (arc pairs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.cap.len()
    }

    /// Adds a logical edge `u → v` with the given capacity and base cost;
    /// returns its edge id. The reverse residual arc is created
    /// automatically with cost `−cost` and residual capacity equal to the
    /// edge's flow.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: u32, cost: f64) -> u32 {
        debug_assert!(cost.is_finite());
        debug_assert!((u as usize) < self.num_nodes() && (v as usize) < self.num_nodes());
        let e = u32::try_from(self.cap.len()).expect("edge id overflow");
        let fwd = ArcData {
            from: u,
            to: v,
            cost,
        };
        let rev = ArcData {
            from: v,
            to: u,
            cost: -cost,
        };
        self.arcs.push(fwd);
        self.arcs.push(rev);
        self.cap.push(cap);
        self.flow.push(0);
        self.adj[u as usize].push(2 * e);
        self.adj[v as usize].push(2 * e + 1);
        e
    }

    /// Outgoing arcs of `u` (both directions; check [`FlowGraph::residual_cap`]).
    #[inline]
    pub fn arcs_from(&self, u: NodeId) -> &[ArcId] {
        &self.adj[u as usize]
    }

    #[inline]
    pub fn arc_from(&self, a: ArcId) -> NodeId {
        self.arcs[a as usize].from
    }

    #[inline]
    pub fn arc_to(&self, a: ArcId) -> NodeId {
        self.arcs[a as usize].to
    }

    /// Base (non-reduced) cost of an arc.
    #[inline]
    pub fn arc_cost(&self, a: ArcId) -> f64 {
        self.arcs[a as usize].cost
    }

    /// Edge id an arc belongs to.
    #[inline]
    pub fn arc_edge(&self, a: ArcId) -> u32 {
        a / 2
    }

    /// True for forward arcs.
    #[inline]
    pub fn is_forward(&self, a: ArcId) -> bool {
        a.is_multiple_of(2)
    }

    /// Residual capacity of an arc.
    #[inline]
    pub fn residual_cap(&self, a: ArcId) -> u32 {
        let e = (a / 2) as usize;
        if a.is_multiple_of(2) {
            self.cap[e] - self.flow[e]
        } else {
            self.flow[e]
        }
    }

    /// Reduced cost `cost(u,v) − τ(u) + τ(v)` (§2.2).
    #[inline]
    pub fn reduced_cost(&self, a: ArcId) -> f64 {
        let arc = &self.arcs[a as usize];
        arc.cost - self.tau[arc.from as usize] + self.tau[arc.to as usize]
    }

    /// Pushes `amount` units of flow along arc `a` (reverse arcs cancel
    /// forward flow).
    ///
    /// # Panics
    /// Debug-asserts residual capacity.
    pub fn push_flow(&mut self, a: ArcId, amount: u32) {
        debug_assert!(self.residual_cap(a) >= amount, "over-push on arc {a}");
        let e = (a / 2) as usize;
        if a.is_multiple_of(2) {
            self.flow[e] += amount;
        } else {
            self.flow[e] -= amount;
        }
    }

    /// Current flow on a logical edge.
    #[inline]
    pub fn edge_flow(&self, e: u32) -> u32 {
        self.flow[e as usize]
    }

    /// Capacity of a logical edge.
    #[inline]
    pub fn edge_cap(&self, e: u32) -> u32 {
        self.cap[e as usize]
    }

    /// Endpoints `(u, v)` of a logical edge.
    #[inline]
    pub fn edge_endpoints(&self, e: u32) -> (NodeId, NodeId) {
        let fwd = &self.arcs[(2 * e) as usize];
        (fwd.from, fwd.to)
    }

    /// Potential of a node.
    #[inline]
    pub fn tau(&self, v: NodeId) -> f64 {
        self.tau[v as usize]
    }

    /// Sets a node potential directly (used by IDA's Theorem-2 fast-phase
    /// exit, which installs a closed-form feasible potential).
    #[inline]
    pub fn set_tau(&mut self, v: NodeId, value: f64) {
        self.tau[v as usize] = value;
    }

    /// Applies the SSPA potential update after a valid shortest path: every
    /// settled node `v` receives `τ(v) += max(0, α(t) − α(v))` (Algorithm 1
    /// lines 8–9; the `max` caps updates for nodes settled beyond the sink,
    /// which keeps reduced costs non-negative after PUA-style reruns).
    ///
    /// α values are read through the closure at call time because PUA may
    /// have improved them after the node settled.
    pub fn update_potentials(
        &mut self,
        settled: &[NodeId],
        alpha: impl Fn(NodeId) -> f64,
        alpha_t: f64,
    ) {
        for &v in settled {
            let delta = alpha_t - alpha(v);
            if delta > 0.0 {
                self.tau[v as usize] += delta;
            }
        }
    }

    /// Checks that every residual arc has non-negative reduced cost — the
    /// invariant Dijkstra's correctness rests on (§2.2). Returns the worst
    /// violation if any.
    pub fn check_reduced_costs(&self, eps: f64) -> Result<(), (ArcId, f64)> {
        let mut worst: Option<(ArcId, f64)> = None;
        for a in 0..self.arcs.len() as ArcId {
            if self.residual_cap(a) > 0 {
                let rc = self.reduced_cost(a);
                if rc < -eps && worst.is_none_or(|(_, w)| rc < w) {
                    worst = Some((a, rc));
                }
            }
        }
        match worst {
            None => Ok(()),
            Some(v) => Err(v),
        }
    }
}

impl Default for FlowGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_create_arc_pairs() {
        let mut g = FlowGraph::with_nodes(3);
        let e = g.add_edge(0, 1, 5, 2.5);
        assert_eq!(e, 0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.arc_from(0), 0);
        assert_eq!(g.arc_to(0), 1);
        assert_eq!(g.arc_from(1), 1);
        assert_eq!(g.arc_to(1), 0);
        assert_eq!(g.arc_cost(0), 2.5);
        assert_eq!(g.arc_cost(1), -2.5);
    }

    #[test]
    fn residual_caps_track_flow() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 3, 1.0);
        let fwd = 2 * e;
        let rev = 2 * e + 1;
        assert_eq!(g.residual_cap(fwd), 3);
        assert_eq!(g.residual_cap(rev), 0);
        g.push_flow(fwd, 2);
        assert_eq!(g.residual_cap(fwd), 1);
        assert_eq!(g.residual_cap(rev), 2);
        g.push_flow(rev, 1); // cancel one unit
        assert_eq!(g.edge_flow(e), 1);
        assert_eq!(g.residual_cap(fwd), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-push")]
    fn over_push_panics_in_debug() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 1.0);
        g.push_flow(2 * e, 2);
    }

    #[test]
    fn reduced_cost_uses_potentials() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 10.0);
        assert_eq!(g.reduced_cost(2 * e), 10.0);
        g.set_tau(0, 3.0);
        g.set_tau(1, 1.0);
        // w = 10 - tau(0) + tau(1) = 8
        assert_eq!(g.reduced_cost(2 * e), 8.0);
        // reverse arc: -10 - 1 + 3 = -8
        assert_eq!(g.reduced_cost(2 * e + 1), -8.0);
    }

    #[test]
    fn update_potentials_caps_at_zero() {
        let mut g = FlowGraph::with_nodes(3);
        let alphas = [0.0, 2.0, 7.0];
        g.update_potentials(&[0, 1, 2], |v| alphas[v as usize], 5.0);
        assert_eq!(g.tau(0), 5.0);
        assert_eq!(g.tau(1), 3.0);
        assert_eq!(g.tau(2), 0.0, "nodes settled beyond α(t) get no update");
    }

    #[test]
    fn check_reduced_costs_reports_violations() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 1.0);
        assert!(g.check_reduced_costs(1e-9).is_ok());
        g.set_tau(0, 5.0); // reduced cost of forward arc becomes -4
        let (arc, rc) = g.check_reduced_costs(1e-9).unwrap_err();
        assert_eq!(arc, 2 * e);
        assert!((rc + 4.0).abs() < 1e-12);
        // Saturate the edge: the forward arc leaves the residual graph, the
        // reverse arc (reduced cost +4) enters, and the check passes again.
        g.push_flow(2 * e, 1);
        assert!(g.check_reduced_costs(1e-9).is_ok());
    }

    #[test]
    fn adjacency_includes_reverse_arcs() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(2, 1, 1, 1.0);
        assert_eq!(g.arcs_from(0), &[0]);
        assert_eq!(g.arcs_from(1), &[1, 3]); // two reverse arcs
        assert_eq!(g.arcs_from(2), &[2]);
    }
}
