//! Residual flow graph with paired arcs and node potentials.
//!
//! This is the graph substrate of the paper's §2.1–2.2: nodes are
//! `{s, t} ∪ Q ∪ P`, each logical edge is stored as a forward/backward arc
//! pair, and every node `v` carries a potential `v.τ`. The *reduced cost* of
//! an arc is `w(u,v) = cost(u,v) − τ(u) + τ(v)` exactly as defined in §2.2;
//! the paper's "edge reversal" during augmentation is flow pushed on the arc
//! pair.
//!
//! The graph is deliberately *incremental*: the CCA algorithms start from an
//! (almost) empty edge set `Esub` and call [`FlowGraph::add_edge`] as
//! Theorem 1 demands more edges.
//!
//! # Memory layout
//!
//! Everything is struct-of-arrays over flat arenas — there is no per-node or
//! per-arc heap object anywhere:
//!
//! * Arc columns `to`, `cost`, `res`, `next`, indexed by [`ArcId`]. The relax
//!   loop streams `next`/`res`/`to`/`cost` and never touches a second
//!   allocation; `from(a)` is simply `to[a ^ 1]` (the partner arc's head),
//!   one element away in the same column.
//! * Adjacency is an intrusive linked list threaded through the `next`
//!   column: `head[u]` is `u`'s first out-arc, `next[a]` the following one.
//!   `tail[u]` makes `add_edge` O(1) *and* keeps iteration in insertion
//!   order — the order the old `Vec<Vec<ArcId>>` adjacency produced — so
//!   parent-arc choices (and therefore tie-broken optima) are unchanged.
//! * `cap`/`flow` per edge are folded into a single per-arc residual column:
//!   `res[2e]` is the forward slack `cap − flow`, `res[2e+1]` the flow
//!   itself. [`FlowGraph::residual_cap`] becomes a branchless single load —
//!   the quantity every relax step actually needs — and a flow push is two
//!   adjacent updates.

/// Node identifier (dense).
pub type NodeId = u32;

/// Arc identifier. Arcs come in pairs: arc `2e` is the forward arc of edge
/// `e`, arc `2e+1` its reverse.
pub type ArcId = u32;

/// Sentinel for "no arc" (used in parent pointers and adjacency links).
pub const NO_ARC: ArcId = u32::MAX;

/// The residual graph.
pub struct FlowGraph {
    // ---- arc columns (SoA, indexed by ArcId) ----
    /// Head node of each arc. The tail is `to[a ^ 1]`.
    to: Vec<NodeId>,
    /// Base cost (`dist` for q→p edges, 0 for source/sink edges, negated on
    /// the reverse arc).
    cost: Vec<f64>,
    /// Residual capacity per arc: `res[2e] = cap − flow`, `res[2e+1] = flow`.
    res: Vec<u32>,
    /// Next out-arc of the same tail node (`NO_ARC` terminates the list).
    next: Vec<ArcId>,
    // ---- node columns ----
    /// First out-arc per node (`NO_ARC` when none).
    head: Vec<ArcId>,
    /// Last out-arc per node — O(1) append in insertion order.
    tail: Vec<ArcId>,
    /// Node potentials `τ` (§2.2), all zero initially.
    tau: Vec<f64>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        FlowGraph {
            to: Vec::new(),
            cost: Vec::new(),
            res: Vec::new(),
            next: Vec::new(),
            head: Vec::new(),
            tail: Vec::new(),
            tau: Vec::new(),
        }
    }

    /// Creates a graph with `nodes` pre-allocated nodes.
    pub fn with_nodes(nodes: usize) -> Self {
        let mut g = FlowGraph::new();
        g.head.resize(nodes, NO_ARC);
        g.tail.resize(nodes, NO_ARC);
        g.tau.resize(nodes, 0.0);
        g
    }

    /// Adds a node with potential 0; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::try_from(self.head.len()).expect("node id overflow");
        self.head.push(NO_ARC);
        self.tail.push(NO_ARC);
        self.tau.push(0.0);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Number of logical edges (arc pairs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Links arc `a` (already pushed into the arc columns) into `u`'s
    /// adjacency list, preserving insertion order.
    #[inline]
    fn link_arc(&mut self, u: NodeId, a: ArcId) {
        let u = u as usize;
        let t = self.tail[u];
        if t == NO_ARC {
            self.head[u] = a;
        } else {
            self.next[t as usize] = a;
        }
        self.tail[u] = a;
    }

    /// Adds a logical edge `u → v` with the given capacity and base cost;
    /// returns its edge id. The reverse residual arc is created
    /// automatically with cost `−cost` and residual capacity equal to the
    /// edge's flow.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: u32, cost: f64) -> u32 {
        debug_assert!(cost.is_finite());
        debug_assert!((u as usize) < self.num_nodes() && (v as usize) < self.num_nodes());
        let e = u32::try_from(self.num_edges()).expect("edge id overflow");
        let fwd = 2 * e;
        // Forward arc 2e.
        self.to.push(v);
        self.cost.push(cost);
        self.res.push(cap);
        self.next.push(NO_ARC);
        // Reverse arc 2e+1.
        self.to.push(u);
        self.cost.push(-cost);
        self.res.push(0);
        self.next.push(NO_ARC);
        self.link_arc(u, fwd);
        self.link_arc(v, fwd + 1);
        e
    }

    /// Iterates the outgoing arcs of `u` in insertion order (both
    /// directions; check [`FlowGraph::residual_cap`]). Walks the intrusive
    /// `next` chain — no allocation, no indirection.
    #[inline]
    pub fn arcs_from(&self, u: NodeId) -> ArcsFrom<'_> {
        ArcsFrom {
            next: &self.next,
            cur: self.head[u as usize],
        }
    }

    /// First out-arc of `u`, `NO_ARC` when none. With
    /// [`FlowGraph::next_arc`] this exposes the raw adjacency chain for
    /// hot loops that want to avoid even the iterator.
    #[inline]
    pub fn first_arc(&self, u: NodeId) -> ArcId {
        self.head[u as usize]
    }

    /// Successor of `a` in its tail node's adjacency chain.
    #[inline]
    pub fn next_arc(&self, a: ArcId) -> ArcId {
        self.next[a as usize]
    }

    #[inline]
    pub fn arc_from(&self, a: ArcId) -> NodeId {
        // The partner arc points back at the tail.
        self.to[(a ^ 1) as usize]
    }

    #[inline]
    pub fn arc_to(&self, a: ArcId) -> NodeId {
        self.to[a as usize]
    }

    /// Base (non-reduced) cost of an arc.
    #[inline]
    pub fn arc_cost(&self, a: ArcId) -> f64 {
        self.cost[a as usize]
    }

    /// Edge id an arc belongs to.
    #[inline]
    pub fn arc_edge(&self, a: ArcId) -> u32 {
        a / 2
    }

    /// True for forward arcs.
    #[inline]
    pub fn is_forward(&self, a: ArcId) -> bool {
        a.is_multiple_of(2)
    }

    /// Residual capacity of an arc — a single branchless load.
    #[inline]
    pub fn residual_cap(&self, a: ArcId) -> u32 {
        self.res[a as usize]
    }

    /// Reduced cost `cost(u,v) − τ(u) + τ(v)` (§2.2).
    #[inline]
    pub fn reduced_cost(&self, a: ArcId) -> f64 {
        let a = a as usize;
        self.cost[a] - self.tau[self.to[a ^ 1] as usize] + self.tau[self.to[a] as usize]
    }

    /// Pushes `amount` units of flow along arc `a` (reverse arcs cancel
    /// forward flow).
    ///
    /// # Panics
    /// Debug-asserts residual capacity.
    pub fn push_flow(&mut self, a: ArcId, amount: u32) {
        debug_assert!(self.residual_cap(a) >= amount, "over-push on arc {a}");
        self.res[a as usize] -= amount;
        self.res[(a ^ 1) as usize] += amount;
    }

    /// Current flow on a logical edge (the reverse arc's residual).
    #[inline]
    pub fn edge_flow(&self, e: u32) -> u32 {
        self.res[(2 * e + 1) as usize]
    }

    /// Capacity of a logical edge (forward slack + flow).
    #[inline]
    pub fn edge_cap(&self, e: u32) -> u32 {
        self.res[(2 * e) as usize] + self.res[(2 * e + 1) as usize]
    }

    /// Endpoints `(u, v)` of a logical edge.
    #[inline]
    pub fn edge_endpoints(&self, e: u32) -> (NodeId, NodeId) {
        (self.to[(2 * e + 1) as usize], self.to[(2 * e) as usize])
    }

    /// Potential of a node.
    #[inline]
    pub fn tau(&self, v: NodeId) -> f64 {
        self.tau[v as usize]
    }

    /// Sets a node potential directly (used by IDA's Theorem-2 fast-phase
    /// exit, which installs a closed-form feasible potential).
    #[inline]
    pub fn set_tau(&mut self, v: NodeId, value: f64) {
        self.tau[v as usize] = value;
    }

    /// Applies the SSPA potential update after a valid shortest path: every
    /// settled node `v` receives `τ(v) += max(0, α(t) − α(v))` (Algorithm 1
    /// lines 8–9; the `max` caps updates for nodes settled beyond the sink,
    /// which keeps reduced costs non-negative after PUA-style reruns).
    ///
    /// α values are read through the closure at call time because PUA may
    /// have improved them after the node settled.
    pub fn update_potentials(
        &mut self,
        settled: &[NodeId],
        alpha: impl Fn(NodeId) -> f64,
        alpha_t: f64,
    ) {
        for &v in settled {
            let delta = alpha_t - alpha(v);
            if delta > 0.0 {
                self.tau[v as usize] += delta;
            }
        }
    }

    /// Checks that every residual arc has non-negative reduced cost — the
    /// invariant Dijkstra's correctness rests on (§2.2). Returns the worst
    /// violation if any.
    pub fn check_reduced_costs(&self, eps: f64) -> Result<(), (ArcId, f64)> {
        let mut worst: Option<(ArcId, f64)> = None;
        for a in 0..self.to.len() as ArcId {
            if self.residual_cap(a) > 0 {
                let rc = self.reduced_cost(a);
                if rc < -eps && worst.is_none_or(|(_, w)| rc < w) {
                    worst = Some((a, rc));
                }
            }
        }
        match worst {
            None => Ok(()),
            Some(v) => Err(v),
        }
    }
}

/// Iterator over a node's out-arcs (see [`FlowGraph::arcs_from`]).
pub struct ArcsFrom<'g> {
    next: &'g [ArcId],
    cur: ArcId,
}

impl Iterator for ArcsFrom<'_> {
    type Item = ArcId;

    #[inline]
    fn next(&mut self) -> Option<ArcId> {
        if self.cur == NO_ARC {
            return None;
        }
        let a = self.cur;
        self.cur = self.next[a as usize];
        Some(a)
    }
}

impl Default for FlowGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_create_arc_pairs() {
        let mut g = FlowGraph::with_nodes(3);
        let e = g.add_edge(0, 1, 5, 2.5);
        assert_eq!(e, 0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.arc_from(0), 0);
        assert_eq!(g.arc_to(0), 1);
        assert_eq!(g.arc_from(1), 1);
        assert_eq!(g.arc_to(1), 0);
        assert_eq!(g.arc_cost(0), 2.5);
        assert_eq!(g.arc_cost(1), -2.5);
    }

    #[test]
    fn residual_caps_track_flow() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 3, 1.0);
        let fwd = 2 * e;
        let rev = 2 * e + 1;
        assert_eq!(g.residual_cap(fwd), 3);
        assert_eq!(g.residual_cap(rev), 0);
        assert_eq!(g.edge_cap(e), 3);
        g.push_flow(fwd, 2);
        assert_eq!(g.residual_cap(fwd), 1);
        assert_eq!(g.residual_cap(rev), 2);
        assert_eq!(g.edge_cap(e), 3, "capacity invariant under pushes");
        g.push_flow(rev, 1); // cancel one unit
        assert_eq!(g.edge_flow(e), 1);
        assert_eq!(g.residual_cap(fwd), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-push")]
    fn over_push_panics_in_debug() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 1.0);
        g.push_flow(2 * e, 2);
    }

    #[test]
    fn reduced_cost_uses_potentials() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 10.0);
        assert_eq!(g.reduced_cost(2 * e), 10.0);
        g.set_tau(0, 3.0);
        g.set_tau(1, 1.0);
        // w = 10 - tau(0) + tau(1) = 8
        assert_eq!(g.reduced_cost(2 * e), 8.0);
        // reverse arc: -10 - 1 + 3 = -8
        assert_eq!(g.reduced_cost(2 * e + 1), -8.0);
    }

    #[test]
    fn update_potentials_caps_at_zero() {
        let mut g = FlowGraph::with_nodes(3);
        let alphas = [0.0, 2.0, 7.0];
        g.update_potentials(&[0, 1, 2], |v| alphas[v as usize], 5.0);
        assert_eq!(g.tau(0), 5.0);
        assert_eq!(g.tau(1), 3.0);
        assert_eq!(g.tau(2), 0.0, "nodes settled beyond α(t) get no update");
    }

    #[test]
    fn check_reduced_costs_reports_violations() {
        let mut g = FlowGraph::with_nodes(2);
        let e = g.add_edge(0, 1, 1, 1.0);
        assert!(g.check_reduced_costs(1e-9).is_ok());
        g.set_tau(0, 5.0); // reduced cost of forward arc becomes -4
        let (arc, rc) = g.check_reduced_costs(1e-9).unwrap_err();
        assert_eq!(arc, 2 * e);
        assert!((rc + 4.0).abs() < 1e-12);
        // Saturate the edge: the forward arc leaves the residual graph, the
        // reverse arc (reduced cost +4) enters, and the check passes again.
        g.push_flow(2 * e, 1);
        assert!(g.check_reduced_costs(1e-9).is_ok());
    }

    #[test]
    fn adjacency_includes_reverse_arcs() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(2, 1, 1, 1.0);
        assert_eq!(g.arcs_from(0).collect::<Vec<_>>(), vec![0]);
        // two reverse arcs
        assert_eq!(g.arcs_from(1).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(g.arcs_from(2).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn arc_iteration_preserves_insertion_order() {
        // The linked-arena adjacency must reproduce the Vec<Vec<_>> order
        // exactly: per node, arcs appear in the order add_edge created them.
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, 1, 1.0); // arcs 0 (0→1), 1 (1→0)
        g.add_edge(0, 2, 1, 1.0); // arcs 2 (0→2), 3 (2→0)
        g.add_edge(1, 0, 1, 1.0); // arcs 4 (1→0), 5 (0→1)
        g.add_edge(0, 3, 1, 1.0); // arcs 6 (0→3), 7 (3→0)
        assert_eq!(g.arcs_from(0).collect::<Vec<_>>(), vec![0, 2, 5, 6]);
        assert_eq!(g.arcs_from(1).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(g.first_arc(0), 0);
        assert_eq!(g.next_arc(0), 2);
        assert_eq!(g.next_arc(6), NO_ARC);
        assert_eq!(g.first_arc(3), 7);
    }
}
