//! Hot-path benchmark: the four raw-speed levers, measured in isolation
//! and end to end.
//!
//! * `hot_read` — page-*hit* read throughput through the store at 1/2/4/8
//!   threads. Hits are served by the seqlock hot directory without taking
//!   the shard mutex; the row records the lock acquisitions per million
//!   reads to prove it.
//! * `dist_kernel` — the scalar `Point::dist2` / `Rect::mindist2` loops
//!   vs. the batched struct-of-arrays kernels (`cca_geo::kernel`) the NN
//!   traversals use for node expansion.
//! * `hilbert_scan` — a full sequential point scan over the bulk-loaded
//!   tree, whose leaves are placed in Hilbert order; with a small buffer
//!   the fault count shows each page is read exactly once.
//! * `sspa` — cold vs. warm-started SSPA on the identical instance: the
//!   warm solve resumes from the cached primal-dual state and performs no
//!   Dijkstra searches (`settled = 0`).
//! * `batch` — the single-thread mixed solver batch of `pool_contention`,
//!   the end-to-end number all levers feed into.
//!
//! Writes `BENCH_hotpath.json` (override with `CCA_BENCH_OUT`). Run with
//! `cargo bench --bench hot_path`; pass `-- --quick` for a smoke run with
//! tiny iteration counts (CI uses this to assert the kernels still run and
//! the JSON stays valid).

use std::hint::black_box;
use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::flow::{solve_complete_bipartite_warm_ctx, FlowCustomer, FlowProvider, SspaCache};
use cca::geo::{kernel, Point, Rect};
use cca::storage::{PageId, PageStore, QueryContext};
use cca::{SolverConfig, SpatialAssignment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Scale {
    quick: bool,
    /// Page reads per thread in `hot_read`.
    reads_per_thread: usize,
    /// Repetitions of the kernel sweep (each sweep = `KERNEL_N` elements).
    kernel_reps: usize,
    /// Best-of rounds for scan/sspa/batch.
    rounds: usize,
}

const KERNEL_N: usize = 4096;

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                quick,
                reads_per_thread: 2_000,
                kernel_reps: 20,
                rounds: 1,
            }
        } else {
            Scale {
                quick,
                reads_per_thread: 200_000,
                kernel_reps: 2_000,
                rounds: 5,
            }
        }
    }
}

/// Lock-free page-hit reads: every page is resident, so every access is a
/// hit and the only contention is the read path itself. Returns
/// (reads/s, lock acquisitions per million reads).
fn hot_read_round(store: &PageStore, pages: &[PageId], threads: usize, reads: usize) -> (f64, f64) {
    let locks_before = store.lock_acquisitions();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let ctx = QueryContext::new();
                let mut rng = StdRng::seed_from_u64(900 + t as u64);
                let mut sum = 0u64;
                for _ in 0..reads {
                    let id = pages[rng.random_range(0..pages.len())];
                    sum += store.with_page_ctx(id, Some(&ctx), |bytes| u64::from(bytes[0]));
                }
                black_box(sum);
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total = (threads * reads) as f64;
    let locks = (store.lock_acquisitions() - locks_before) as f64;
    (total / wall, locks * 1.0e6 / total)
}

/// Million distance evaluations per second for one kernel variant.
fn kernel_rate(reps: usize, mut sweep: impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += sweep();
    }
    black_box(acc);
    (reps * KERNEL_N) as f64 / start.elapsed().as_secs_f64() / 1.0e6
}

fn build_instance(shards: usize) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 24,
        num_customers: 20_000,
        capacity: CapacitySpec::Fixed(100),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 7,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 16.0, shards)
}

/// The `pool_contention` mixed batch (IDA variants + CA + SA).
fn batch_queries() -> Vec<SolverConfig> {
    let mut queries = Vec::new();
    for group_size in [4, 8, 16] {
        queries.push(SolverConfig::new("ida-grouped").group_size(group_size));
    }
    for _ in 0..3 {
        queries.push(SolverConfig::new("ida"));
    }
    for delta in [10.0, 20.0] {
        queries.push(SolverConfig::new("ca").delta(delta));
        queries.push(SolverConfig::new("sa").delta(2.0 * delta));
    }
    queries
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = Scale::new(quick);
    let mut rows: Vec<String> = Vec::new();

    // ---- hot_read ---------------------------------------------------
    let store = PageStore::with_config_sharded(1024, 4096, 8);
    let pages: Vec<PageId> = (0..1024)
        .map(|i| {
            let id = store.alloc_page();
            store.write_page(id, &vec![(i % 251) as u8; 1024]);
            id
        })
        .collect();
    // Touch everything once so the directory is fully hot.
    for &id in &pages {
        store.with_page(id, |b| black_box(b[0]));
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for &threads in &THREAD_COUNTS {
        let (qps, locks_per_m) = hot_read_round(&store, &pages, threads, scale.reads_per_thread);
        println!("hot_read threads={threads}  {qps:12.0} reads/s  {locks_per_m:6.1} locks/Mread");
        // More reader threads than host cores measures time-slicing, not
        // parallel scaling — tag those rows for downstream readers.
        let oversub = if threads > host_cores {
            ", \"oversubscribed\": true"
        } else {
            ""
        };
        rows.push(format!(
            "    {{\"workload\": \"hot_read\", \"threads\": {threads}{oversub}, \
             \"reads_per_s\": {qps:.0}, \"lock_acqs_per_mread\": {locks_per_m:.1}}}"
        ));
    }

    // ---- dist_kernel ------------------------------------------------
    let mut rng = StdRng::seed_from_u64(42);
    let pts: Vec<Point> = (0..KERNEL_N)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect();
    let rects: Vec<Rect> = pts
        .iter()
        .map(|p| {
            Rect::new(
                *p,
                Point::new(
                    p.x + rng.random_range(0.0..50.0),
                    p.y + rng.random_range(0.0..50.0),
                ),
            )
        })
        .collect();
    let q = Point::new(500.0, 500.0);
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().map(|p| (p.x, p.y)).unzip();
    let (lox, loy): (Vec<f64>, Vec<f64>) = rects.iter().map(|r| (r.lo.x, r.lo.y)).unzip();
    let (hix, hiy): (Vec<f64>, Vec<f64>) = rects.iter().map(|r| (r.hi.x, r.hi.y)).unzip();
    let mut out = vec![0.0f64; KERNEL_N];

    let variants: Vec<(&str, f64)> = vec![
        (
            "point_scalar",
            kernel_rate(scale.kernel_reps, || pts.iter().map(|p| q.dist2(p)).sum()),
        ),
        ("point_batched", {
            kernel_rate(scale.kernel_reps, || {
                kernel::point_dist2_batch(q.x, q.y, &xs, &ys, &mut out);
                out[KERNEL_N - 1]
            })
        }),
        (
            "rect_scalar",
            kernel_rate(scale.kernel_reps, || {
                rects.iter().map(|r| r.mindist2(&q)).sum()
            }),
        ),
        ("rect_batched", {
            kernel_rate(scale.kernel_reps, || {
                kernel::rect_mindist2_batch(q.x, q.y, &lox, &loy, &hix, &hiy, &mut out);
                out[KERNEL_N - 1]
            })
        }),
    ];
    for (variant, melems) in &variants {
        println!("dist_kernel {variant:14} {melems:8.1} Melem/s");
        rows.push(format!(
            "    {{\"workload\": \"dist_kernel\", \"variant\": \"{variant}\", \
             \"melems_per_s\": {melems:.1}}}"
        ));
    }

    // ---- hilbert_scan + batch (share the 20k instance) --------------
    let instance = build_instance(8);
    let tree = instance.tree();
    let mut best_scan_s = f64::INFINITY;
    let mut scan_faults = 0u64;
    for _ in 0..scale.rounds.max(2) {
        tree.store().clear_cache();
        let ctx = QueryContext::new();
        let start = Instant::now();
        let mut n = 0u64;
        tree.for_each_point_ctx(Some(&ctx), &mut |_, _| n += 1)
            .expect("no budget, no abort");
        assert_eq!(n, 20_000);
        best_scan_s = best_scan_s.min(start.elapsed().as_secs_f64());
        scan_faults = ctx.stats().faults;
    }
    println!(
        "hilbert_scan {:8.2} ms  faults={scan_faults}",
        best_scan_s * 1e3
    );
    rows.push(format!(
        "    {{\"workload\": \"hilbert_scan\", \"ms\": {:.2}, \"faults\": {scan_faults}}}",
        best_scan_s * 1e3
    ));

    let queries = batch_queries();
    let mut best_batch = 0.0f64;
    for _ in 0..scale.rounds {
        let runner = instance.batch().threads(1);
        let start = Instant::now();
        let report = runner.run(&queries).expect("registered solvers");
        let wall = start.elapsed().as_secs_f64();
        let fault_sum: u64 = report.results.iter().map(|r| r.stats.io.faults).sum();
        assert_eq!(fault_sum, report.io.faults, "per-query faults must sum up");
        best_batch = best_batch.max(queries.len() as f64 / wall);
    }
    println!("batch threads=1  {best_batch:7.2} q/s");
    rows.push(format!(
        "    {{\"workload\": \"batch\", \"threads\": 1, \"qps\": {best_batch:.2}}}"
    ));

    // ---- sspa cold vs warm ------------------------------------------
    let mut rng = StdRng::seed_from_u64(11);
    let providers: Vec<FlowProvider> = (0..24)
        .map(|_| FlowProvider {
            pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
            cap: 40,
        })
        .collect();
    let customers: Vec<FlowCustomer> = (0..if quick { 120 } else { 800 })
        .map(|_| FlowCustomer {
            pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
            weight: 1,
        })
        .collect();
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    let mut cold_settled = 0u64;
    let mut warm_settled = 0u64;
    for _ in 0..scale.rounds {
        let start = Instant::now();
        let (cold, stats) = solve_complete_bipartite_warm_ctx(&providers, &customers, None, None)
            .expect("no context, no abort");
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
        cold_settled = stats.settled;

        let cache = SspaCache::new();
        // Populate, then resume the identical instance from the cache.
        solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
            .expect("no context, no abort");
        let start = Instant::now();
        let (warm, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                .expect("no context, no abort");
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
        warm_settled = stats.settled;
        assert!(stats.warm_started, "second solve must resume from cache");
        assert!(
            (cold.cost - warm.cost).abs() <= 1e-6 * cold.cost.max(1.0),
            "warm start changed the optimum: {} vs {}",
            cold.cost,
            warm.cost
        );
    }
    for (variant, ms, settled) in [
        ("cold", cold_ms, cold_settled),
        ("warm", warm_ms, warm_settled),
    ] {
        println!("sspa {variant:5} {ms:8.2} ms  settled={settled}");
        rows.push(format!(
            "    {{\"workload\": \"sspa\", \"variant\": \"{variant}\", \"ms\": {ms:.2}, \
             \"settled\": {settled}}}"
        ));
    }

    // ---- emit -------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"config\": {{\"customers\": 20000, \
         \"providers\": 24, \"page_size\": 1024, \"buffer_percent\": 16.0, \"shards\": 8, \
         \"kernel_n\": {KERNEL_N}, \"quick\": {}, \"host_cores\": {host_cores}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        scale.quick,
        rows.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
