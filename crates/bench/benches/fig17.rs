//! Figure 17 — approximation performance vs. |P| (δ_SA = 40, δ_CA = 10).
//!
//! Expected shape (§5.3): growing |P| hurts SA (denser space around each
//! provider group raises the potential for suboptimal matchings) while CA
//! is affected to a lesser degree.

use cca::core::RefineMethod;
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{build_instance, header, measure, print_approx_table, shape_check, Scale};

fn main() {
    let scale = Scale::from_env();
    let nq = scale.count(1000);
    let p_values: Vec<usize> = [25_000, 50_000, 100_000, 150_000, 200_000]
        .iter()
        .map(|&p| scale.count(p))
        .collect();
    header(
        "Figure 17",
        "approximation vs |P| (δ_SA = 40, δ_CA = 10)",
        &format!("k = 80, |Q| = {nq}, |P| in {p_values:?}"),
    );

    let mut rows = Vec::new();
    let mut exact_costs: Vec<(String, f64)> = Vec::new();
    for &np in &p_values {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        let exact = measure(&instance, &SolverConfig::new("ida"), np);
        exact_costs.push((np.to_string(), exact.cost));
        rows.push(exact);
        for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            rows.push(measure(
                &instance,
                &SolverConfig::new("sa").delta(40.0).refine(refine),
                np,
            ));
            rows.push(measure(
                &instance,
                &SolverConfig::new("ca").delta(10.0).refine(refine),
                np,
            ));
        }
    }
    let cost_of = |x: &str| {
        exact_costs
            .iter()
            .find(|(k, _)| k == x)
            .map(|&(_, c)| c)
            .unwrap()
    };
    print_approx_table(&rows, cost_of);

    let quality = |series: &str, np: usize| {
        let x = np.to_string();
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .cost
            / cost_of(&x)
    };
    // SA degrades as |P| grows in the customer-surplus regime (past the
    // k·|Q| = |P| crossover the space around each provider group keeps
    // getting denser, §5.3).
    let crossover = 80 * nq;
    let post: Vec<usize> = p_values
        .iter()
        .copied()
        .filter(|&p| p >= crossover)
        .collect();
    shape_check(
        "SA's quality degrades as |P| grows past k|Q| = |P|",
        quality("SAN", post[post.len() - 1]) >= quality("SAN", post[0]) - 1e-9,
    );
    shape_check(
        "CA is more robust than SA at every |P| (quality never worse)",
        p_values
            .iter()
            .all(|&np| quality("CAN", np) <= quality("SAN", np) + 1e-9),
    );
}
