//! Figure 12 — mixed capacities: k drawn uniformly from ranges
//! 10–30 … 160–480 (paper defaults otherwise).
//!
//! Expected shape (§5.2): "mixed k values do not affect the effectiveness of
//! our pruning techniques" — the results mirror Figure 9.

use cca::datagen::CapacitySpec;
use cca::SolverConfig;
use cca_bench::{
    build_instance, default_config, header, measure, print_exact_table, shape_check, Scale,
    MIXED_K_RANGES,
};

fn main() {
    let scale = Scale::from_env();
    let base = default_config(scale);
    header(
        "Figure 12",
        "performance for mixed capacities",
        &format!(
            "|Q| = {}, |P| = {}, k ~ U[lo, hi] per range",
            base.num_providers, base.num_customers
        ),
    );

    let mut rows = Vec::new();
    for (lo, hi) in MIXED_K_RANGES {
        let cfg = cca::datagen::WorkloadConfig {
            capacity: CapacitySpec::Mixed { lo, hi },
            ..base.clone()
        };
        let instance = build_instance(&cfg);
        let label = format!("{lo}~{hi}");
        for config in [
            SolverConfig::new("ria").theta(scale.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, label.clone()));
        }
    }
    print_exact_table(&rows);

    for (lo, hi) in MIXED_K_RANGES {
        let x = format!("{lo}~{hi}");
        let get = |name: &str| rows.iter().find(|r| r.series == name && r.x == x).unwrap();
        shape_check(
            &format!("k={x}: pruning keeps working (IDA <= NIA in |Esub|)"),
            get("IDA").esub <= get("NIA").esub,
        );
    }
}
