//! Figure 18 — approximation quality and time across the four distribution
//! combinations (δ_SA = 40, δ_CA = 10).
//!
//! Expected shape (§5.3): CA is fastest everywhere; it is more accurate
//! than SA when Q and P are similarly distributed, comparable otherwise;
//! overall "CA typically computes a near-optimal matching, while being
//! orders of magnitude faster than IDA".

use cca::core::RefineMethod;
use cca::datagen::{CapacitySpec, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{
    build_instance, header, measure, print_approx_table, shape_check, Scale, DIST_COMBOS,
};

fn main() {
    let scale = Scale::from_env();
    // Same halved scale as Figure 13 (cross-distribution instances explore
    // far more edges).
    let eff = Scale(scale.0 * 0.5);
    let nq = eff.count(1000);
    let np = eff.count(100_000);
    header(
        "Figure 18",
        "approximation across distributions (δ_SA = 40, δ_CA = 10)",
        &format!("|Q| = {nq}, |P| = {np}, k = 80"),
    );

    let mut rows = Vec::new();
    let mut exact_costs: Vec<(String, f64)> = Vec::new();
    for (qd, pd) in DIST_COMBOS {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: qd,
            p_dist: pd,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        let label = format!("{}vs{}", qd.label(), pd.label());
        let exact = measure(&instance, &SolverConfig::new("ida"), label.clone());
        exact_costs.push((label.clone(), exact.cost));
        rows.push(exact);
        for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            rows.push(measure(
                &instance,
                &SolverConfig::new("sa").delta(40.0).refine(refine),
                label.clone(),
            ));
            rows.push(measure(
                &instance,
                &SolverConfig::new("ca").delta(10.0).refine(refine),
                label.clone(),
            ));
        }
    }
    let cost_of = |x: &str| {
        exact_costs
            .iter()
            .find(|(k, _)| k == x)
            .map(|&(_, c)| c)
            .unwrap()
    };
    print_approx_table(&rows, cost_of);

    let row = |series: &str, x: &str| {
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
    };
    shape_check(
        "CA is more accurate than SA on similarly distributed Q and P",
        row("CAN", "CvsC").cost <= row("SAN", "CvsC").cost
            && row("CAN", "UvsU").cost <= row("SAN", "UvsU").cost,
    );
    shape_check(
        "CA is faster than exact IDA on every combination",
        DIST_COMBOS.iter().all(|(qd, pd)| {
            let x = format!("{}vs{}", qd.label(), pd.label());
            let ca = row("CAN", &x);
            let ida = row("IDA", &x);
            ca.cpu_s + ca.io_s < ida.cpu_s + ida.io_s
        }),
    );
}
