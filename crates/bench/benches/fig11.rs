//! Figure 11 — performance vs. |P| (paper: 25K…200K at k = 80, |Q| = 1K).
//!
//! Expected shape (§5.2): "When |P| increases, the complete flow graph grows
//! but the subgraph explored by our algorithms shrinks" — more customers
//! mean closer NNs and an easier problem.

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{build_instance, header, measure, print_exact_table, shape_check, Scale};

fn main() {
    let scale = Scale::from_env();
    let nq = scale.count(1000);
    let p_values: Vec<usize> = [25_000, 50_000, 100_000, 150_000, 200_000]
        .iter()
        .map(|&p| scale.count(p))
        .collect();
    header(
        "Figure 11",
        "performance vs |P|",
        &format!("k = 80, |Q| = {nq}, |P| in {p_values:?} (paper: 25K..200K)"),
    );

    let mut rows = Vec::new();
    for &np in &p_values {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        for config in [
            SolverConfig::new("ria").theta(scale.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, np));
        }
    }
    print_exact_table(&rows);

    // "If there are too many customers, the NNs of each service provider
    // are closer ... the problem becomes easier and fewer Esub edges are
    // needed" (§5.2): past the k·|Q| = |P| crossover, |Esub| falls as |P|
    // keeps growing.
    let esub_of = |np: usize| {
        rows.iter()
            .find(|r| r.series == "IDA" && r.x == np.to_string())
            .unwrap()
            .esub
    };
    let crossover_p = 80 * nq; // Σk = |P|
    let at_crossover = esub_of(
        *p_values
            .iter()
            .min_by_key(|&&p| p.abs_diff(crossover_p))
            .unwrap(),
    );
    let at_largest = esub_of(p_values[p_values.len() - 1]);
    shape_check(
        "customer surplus shrinks the explored subgraph (|Esub| falls past k|Q|=|P|)",
        at_largest < at_crossover,
    );
    // The gap between IDA and NIA/RIA grows as |P| outgrows k|Q| (§5.2).
    let gap = |np: usize| {
        let x = np.to_string();
        let nia = rows.iter().find(|r| r.series == "NIA" && r.x == x).unwrap();
        let ida = rows.iter().find(|r| r.series == "IDA" && r.x == x).unwrap();
        nia.esub as f64 / ida.esub as f64
    };
    shape_check(
        "IDA's advantage grows as |P| grows past k|Q|",
        gap(p_values[p_values.len() - 1]) >= gap(p_values[0]),
    );
}
