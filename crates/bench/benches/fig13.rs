//! Figure 13 — the four distribution combinations U/C × U/C (paper
//! defaults otherwise).
//!
//! Expected shape (§5.2): computing the optimal assignment gets much more
//! expensive when the two sets are distributed differently; NIA falls behind
//! RIA there (its one-by-one edge retrieval is invoked very many times).

use cca::datagen::{CapacitySpec, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{
    build_instance, header, measure, print_exact_table, shape_check, Scale, DIST_COMBOS,
};

fn main() {
    let scale = Scale::from_env();
    // Cross-distribution instances explore an order of magnitude more
    // edges; run this figure at half the configured scale so `cargo bench`
    // stays affordable (documented in EXPERIMENTS.md).
    let eff = Scale(scale.0 * 0.5);
    let nq = eff.count(1000);
    let np = eff.count(100_000);
    header(
        "Figure 13",
        "different Q/P distributions (exact algorithms)",
        &format!("|Q| = {nq}, |P| = {np}, k = 80, combos UvsU/UvsC/CvsU/CvsC"),
    );

    let mut rows = Vec::new();
    for (qd, pd) in DIST_COMBOS {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: qd,
            p_dist: pd,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        let label = format!("{}vs{}", qd.label(), pd.label());
        for config in [
            SolverConfig::new("ria").theta(eff.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, label.clone()));
        }
    }
    print_exact_table(&rows);

    let esub = |series: &str, x: &str| {
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .esub
    };
    shape_check(
        "cross distributions (UvsC, CvsU) explore more edges than matched ones",
        esub("IDA", "UvsC") > esub("IDA", "UvsU") && esub("IDA", "CvsU") > esub("IDA", "CvsC"),
    );
    let cpu = |series: &str, x: &str| {
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .cpu_s
    };
    shape_check(
        "NIA is slower than RIA on cross-distribution instances (§5.2)",
        cpu("NIA", "UvsC") > cpu("RIA", "UvsC") || cpu("NIA", "CvsU") > cpu("RIA", "CvsU"),
    );
}
