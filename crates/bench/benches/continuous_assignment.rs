//! Dynamic-world benchmark: the continuous-assignment engine against
//! re-solving from scratch on every event.
//!
//! Two regimes, following ISSUE 9's acceptance criteria:
//!
//! * **Mixed stream at 10⁴ customers** — arrivals, departures, capacity
//!   changes and provider moves in the default `ArrivalProcess` mix. The
//!   row reports incremental events/sec, the repair-tier breakdown (local /
//!   expanded / full / warm-started) and the final cost against a
//!   from-scratch IDA solve of the final world.
//! * **Single-customer arrivals at 10⁵ customers** — the headline
//!   comparison: incremental events/sec must be ≥ 5× the events/sec a
//!   full-re-solve-per-event baseline could sustain (measured as the wall
//!   time of one from-scratch solve of the final world), with the engine's
//!   final cost within 1 % of that from-scratch optimum. Both bounds are
//!   asserted in the full run; `--quick` shrinks the instances for CI and
//!   asserts only feasibility.
//!
//! Writes `BENCH_dynamic.json` (override with `CCA_BENCH_OUT`). Run with
//! `cargo bench --bench continuous_assignment` (pass `-- --quick` for the
//! CI smoke run).

use std::time::Instant;

use cca::datagen::{ArrivalProcess, CapacitySpec, StreamEvent, WorkloadConfig};
use cca::{ContinuousAssignment, ContinuousConfig, SolverConfig, SpatialAssignment, WorldEvent};

fn world(ev: StreamEvent) -> WorldEvent {
    match ev {
        StreamEvent::CustomerArrive { id, pos } => WorldEvent::CustomerArrive { id, pos },
        StreamEvent::CustomerDepart { id, .. } => WorldEvent::CustomerDepart { id },
        StreamEvent::ProviderCapacityDelta { index, delta } => {
            WorldEvent::ProviderCapacityDelta { index, delta }
        }
        StreamEvent::ProviderMove { index, to } => WorldEvent::ProviderMove { index, to },
    }
}

struct Scale {
    name: &'static str,
    customers: usize,
    providers: usize,
    capacity: u32,
    events: u64,
    arrivals_only: bool,
    /// Force a couple of mid-stream full re-solves (exercising the
    /// warm-start path) instead of the default 25 % threshold, which a
    /// bounded stream never crosses at these sizes.
    dirty_threshold: f64,
}

fn scales(quick: bool) -> Vec<Scale> {
    if quick {
        vec![
            Scale {
                name: "mixed",
                customers: 2_000,
                providers: 24,
                capacity: 20,
                events: 300,
                arrivals_only: false,
                dirty_threshold: 0.05,
            },
            Scale {
                name: "arrivals",
                customers: 5_000,
                providers: 32,
                capacity: 30,
                events: 200,
                arrivals_only: true,
                dirty_threshold: 0.25,
            },
        ]
    } else {
        vec![
            Scale {
                name: "mixed",
                customers: 10_000,
                providers: 100,
                capacity: 80,
                events: 1_500,
                arrivals_only: false,
                dirty_threshold: 0.05,
            },
            Scale {
                name: "arrivals",
                customers: 100_000,
                providers: 200,
                capacity: 80,
                events: 2_000,
                arrivals_only: true,
                dirty_threshold: 0.25,
            },
        ]
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows: Vec<String> = Vec::new();

    for spec in scales(quick) {
        let w = WorkloadConfig {
            num_providers: spec.providers,
            num_customers: spec.customers,
            capacity: CapacitySpec::Fixed(spec.capacity),
            seed: 2008,
            ..WorkloadConfig::paper_default()
        }
        .generate();
        let mut stream = if spec.arrivals_only {
            ArrivalProcess::arrivals_only(&w, 2008)
        } else {
            ArrivalProcess::new(&w, 2008)
        };
        let cfg = ContinuousConfig {
            dirty_threshold: spec.dirty_threshold,
            // The 10⁴ mixed world sits at 10⁶ provider-customer edges, where
            // a *cold* in-memory SSPA full solve takes minutes; cap the
            // limit so that scale's full re-solves run IDA instead (small
            // instances stay on the warm-startable in-memory path).
            sspa_edge_limit: 500_000,
            ..ContinuousConfig::default()
        };

        let t0 = Instant::now();
        let mut engine = ContinuousAssignment::build(w.providers.clone(), w.customers.clone(), cfg);
        let build_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for _ in 0..spec.events {
            engine.apply(world(stream.next_event()), None);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let events_per_sec = spec.events as f64 / wall_s;
        engine.check_feasible().expect("feasible after the stream");
        assert_eq!(engine.deficit(), 0, "maximal after the stream");

        // From-scratch baseline on the *final* world: its cost is the
        // optimum the engine is judged against, and its wall time is the
        // per-event cost a naive re-solve-everything engine would pay.
        let t0 = Instant::now();
        let scratch = SpatialAssignment::build(
            engine.providers().to_vec(),
            engine.alive_customers().to_vec(),
        );
        let result = scratch
            .run_config(&SolverConfig::new("ida"))
            .expect("ida is registered");
        let scratch_s = t0.elapsed().as_secs_f64();
        assert!(result.aborted.is_none());
        let full_events_per_sec = 1.0 / scratch_s;
        let speedup = events_per_sec / full_events_per_sec;
        let cost_ratio = engine.cost() / result.matching.cost().max(1e-9);
        let s = engine.stats();

        println!(
            "{:9} |P|={} |Q|={} k={}: build {:.2}s, {} events in {:.2}s ({:.1} ev/s), \
             full re-solve {:.2}s ({:.3} ev/s) -> speedup {:.1}x, cost ratio {:.4}",
            spec.name,
            spec.customers,
            spec.providers,
            spec.capacity,
            build_s,
            spec.events,
            wall_s,
            events_per_sec,
            scratch_s,
            full_events_per_sec,
            speedup,
            cost_ratio,
        );
        println!(
            "          repairs: local={} expansions={} full={} warm={} evicted={} aborted={}",
            s.local_repairs,
            s.expansions,
            s.full_resolves,
            s.warm_full_resolves,
            s.evicted,
            s.aborted_repairs,
        );

        if !quick && spec.arrivals_only {
            assert!(
                speedup >= 5.0,
                "incremental must beat full re-solve 5x: {speedup:.2}"
            );
            assert!(
                cost_ratio <= 1.01,
                "cost must stay within 1% of from-scratch: {cost_ratio:.4}"
            );
        }

        rows.push(format!(
            "    {{\"workload\": \"{}\", \"customers\": {}, \"providers\": {}, \"capacity\": {}, \
             \"events\": {}, \"events_per_sec\": {:.2}, \"full_resolve_events_per_sec\": {:.4}, \
             \"speedup_vs_full\": {:.1}, \"cost_ratio_vs_scratch\": {:.4}, \"build_s\": {:.2}, \
             \"local_repairs\": {}, \"expansions\": {}, \"full_resolves\": {}, \
             \"warm_full_resolves\": {}, \"evicted\": {}}}",
            spec.name,
            spec.customers,
            spec.providers,
            spec.capacity,
            spec.events,
            events_per_sec,
            full_events_per_sec,
            speedup,
            cost_ratio,
            build_s,
            s.local_repairs,
            s.expansions,
            s.full_resolves,
            s.warm_full_resolves,
            s.evicted,
        ));
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"continuous_assignment\",\n  \"config\": {{\"quick\": {quick}, \
         \"host_cores\": {host_cores}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_dynamic.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
