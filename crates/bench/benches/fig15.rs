//! Figure 15 — approximation performance vs. capacity k
//! (δ fixed at the paper's best trade-off: 40 for SA, 10 for CA).
//!
//! Expected shape (§5.3): quality improves (ratio drops) as k grows — pair
//! distances grow while group MBRs stay fixed; CA is more robust than SA.

use cca::core::RefineMethod;
use cca::datagen::CapacitySpec;
use cca::SolverConfig;
use cca_bench::{
    build_instance, default_config, header, measure, print_approx_table, shape_check, Scale,
    K_RANGE,
};

fn main() {
    let scale = Scale::from_env();
    let base = default_config(scale);
    header(
        "Figure 15",
        "approximation vs k (δ_SA = 40, δ_CA = 10)",
        &format!(
            "|Q| = {}, |P| = {}, k in {K_RANGE:?}",
            base.num_providers, base.num_customers
        ),
    );

    let mut rows = Vec::new();
    let mut exact_costs: Vec<(String, f64)> = Vec::new();
    for k in K_RANGE {
        let cfg = cca::datagen::WorkloadConfig {
            capacity: CapacitySpec::Fixed(k),
            ..base.clone()
        };
        let instance = build_instance(&cfg);
        let exact = measure(&instance, &SolverConfig::new("ida"), k);
        exact_costs.push((k.to_string(), exact.cost));
        rows.push(exact);
        for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            rows.push(measure(
                &instance,
                &SolverConfig::new("sa").delta(40.0).refine(refine),
                k,
            ));
            rows.push(measure(
                &instance,
                &SolverConfig::new("ca").delta(10.0).refine(refine),
                k,
            ));
        }
    }
    let cost_of = |x: &str| {
        exact_costs
            .iter()
            .find(|(k, _)| k == x)
            .map(|&(_, c)| c)
            .unwrap()
    };
    print_approx_table(&rows, cost_of);

    let quality = |series: &str, k: u32| {
        let x = k.to_string();
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .cost
            / cost_of(&x)
    };
    shape_check(
        "quality improves with k for CA (ratio at k=320 below k=20)",
        quality("CAN", 320) <= quality("CAN", 20),
    );
    shape_check(
        "CA stays within ~25% of optimal at every k (paper: 12-23%)",
        K_RANGE.iter().all(|&k| quality("CAN", k) < 1.25),
    );
}
