//! Figure 16 — approximation performance vs. |Q| (δ_SA = 40, δ_CA = 10).
//!
//! Expected shape (§5.3): CA is more accurate than SA with marginal
//! differences between its N/E variants; CA's quality worsens as |Q| grows
//! (more providers around a customer group raise the chance of suboptimal
//! pairs).

use cca::core::RefineMethod;
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{build_instance, header, measure, print_approx_table, shape_check, Scale};

fn main() {
    let scale = Scale::from_env();
    let np = scale.count(100_000);
    let q_values: Vec<usize> = [250, 500, 1000, 2500, 5000]
        .iter()
        .map(|&q| scale.count(q))
        .collect();
    header(
        "Figure 16",
        "approximation vs |Q| (δ_SA = 40, δ_CA = 10)",
        &format!("k = 80, |P| = {np}, |Q| in {q_values:?}"),
    );

    let mut rows = Vec::new();
    let mut exact_costs: Vec<(String, f64)> = Vec::new();
    for &nq in &q_values {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        let exact = measure(&instance, &SolverConfig::new("ida"), nq);
        exact_costs.push((nq.to_string(), exact.cost));
        rows.push(exact);
        for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            rows.push(measure(
                &instance,
                &SolverConfig::new("sa").delta(40.0).refine(refine),
                nq,
            ));
            rows.push(measure(
                &instance,
                &SolverConfig::new("ca").delta(10.0).refine(refine),
                nq,
            ));
        }
    }
    let cost_of = |x: &str| {
        exact_costs
            .iter()
            .find(|(k, _)| k == x)
            .map(|&(_, c)| c)
            .unwrap()
    };
    print_approx_table(&rows, cost_of);

    let quality = |series: &str, nq: usize| {
        let x = nq.to_string();
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .cost
            / cost_of(&x)
    };
    let first = q_values[0];
    let last = q_values[q_values.len() - 1];
    shape_check(
        "CAN and CAE differ only marginally (within 5% of each other)",
        q_values
            .iter()
            .all(|&nq| (quality("CAN", nq) - quality("CAE", nq)).abs() < 0.05),
    );
    shape_check(
        "CA quality degrades as |Q| grows",
        quality("CAN", last) >= quality("CAN", first) - 1e-9,
    );
}
