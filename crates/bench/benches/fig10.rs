//! Figure 10 — performance vs. |Q| (paper: 0.25K…5K at k = 80,
//! |P| = 100 K).
//!
//! Expected shape (§5.2): cost increases with |Q| but saturates once
//! `k·|Q| > |P|`; IDA prunes most while `k·|Q| < |P|`.

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{build_instance, header, measure, print_exact_table, shape_check, Scale};

fn main() {
    let scale = Scale::from_env();
    let np = scale.count(100_000);
    let q_values: Vec<usize> = [250, 500, 1000, 2500, 5000]
        .iter()
        .map(|&q| scale.count(q))
        .collect();
    header(
        "Figure 10",
        "performance vs |Q|",
        &format!("k = 80, |P| = {np}, |Q| in {q_values:?} (paper: 0.25K..5K)"),
    );

    let mut rows = Vec::new();
    for &nq in &q_values {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        for config in [
            SolverConfig::new("ria").theta(scale.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, nq));
        }
    }
    print_exact_table(&rows);

    for &nq in &q_values {
        let x = nq.to_string();
        let get = |name: &str| rows.iter().find(|r| r.series == name && r.x == x).unwrap();
        shape_check(
            &format!("|Q|={nq}: IDA explores no more edges than NIA"),
            get("IDA").esub <= get("NIA").esub,
        );
    }
    // Saturation: "the cost of the problem increases with |Q|, but
    // saturates when k·|Q| > |P|" (§5.2). Compare total-time growth per |Q|
    // doubling before the crossover (k·|Q| = |P| at |Q| = |P|/80) against
    // after it: growth must slow markedly.
    let total_of = |nq: usize| {
        let r = rows
            .iter()
            .find(|r| r.series == "IDA" && r.x == nq.to_string())
            .unwrap();
        r.cpu_s + r.io_s
    };
    let before = total_of(q_values[2]) / total_of(q_values[1]); // both ≤ crossover
    let after = total_of(q_values[4]) / total_of(q_values[3]); // both ≥ crossover
    shape_check(
        "total-time growth slows once k|Q| > |P| (saturation)",
        after < before,
    );
}
