//! Serving-layer throughput benchmark: the `cca-serve` scheduler under a
//! sustained mixed query stream.
//!
//! Two workloads over one shared instance:
//!
//! * `batch` — the `BatchRunner` (now a thin adapter over the scheduler)
//!   executing a mixed solver batch at 1/2/4/8 workers; measures the
//!   scheduler's dispatch overhead on the end-to-end serving shape.
//! * `stream` — direct `cca_serve::serve` submission of a query stream
//!   against a bounded admission queue, with per-query I/O budgets;
//!   completed / budget-aborted / shed requests are counted, so the row
//!   records the throughput of the *admission + abort* machinery, not just
//!   raw solving.
//!
//! Writes the measured throughputs to `BENCH_serve.json` (override the
//! path with `CCA_BENCH_OUT`). Run with `cargo bench --bench
//! serve_throughput`.

use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::serve::{serve, Priority, Request, ServeConfig, Ticket};
use cca::{QueryContext, SolverConfig, SpatialAssignment};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STREAM_LEN: usize = 64;
const STREAM_BUDGET: u64 = 400;
const REPEATS: usize = 7;

fn build() -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 24,
        num_customers: 12_000,
        capacity: CapacitySpec::Fixed(60),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 11,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 8.0, 8)
}

/// IDA-heavy mix — the solvers that actually live on the page store.
fn batch_queries() -> Vec<SolverConfig> {
    let mut queries = Vec::new();
    for group_size in [4, 8] {
        queries.push(SolverConfig::new("ida-grouped").group_size(group_size));
    }
    for _ in 0..4 {
        queries.push(SolverConfig::new("ida"));
    }
    for delta in [10.0, 20.0] {
        queries.push(SolverConfig::new("ca").delta(delta));
    }
    queries
}

/// One `BatchRunner` round over the scheduler. Returns queries/second.
fn batch_round(instance: &SpatialAssignment, queries: &[SolverConfig], workers: usize) -> f64 {
    let start = Instant::now();
    let report = instance
        .batch()
        .threads(workers)
        .run(queries)
        .expect("registered solvers");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.num_aborted(), 0);
    let fault_sum: u64 = report.results.iter().map(|r| r.stats.io.faults).sum();
    assert_eq!(fault_sum, report.io.faults, "attribution must hold");
    queries.len() as f64 / wall
}

/// One direct serving round: a budgeted query stream through a bounded
/// admission queue. Returns requests/second over (completed + aborted);
/// shed requests are asserted away by pacing submissions with ticket waits.
fn stream_round(instance: &SpatialAssignment, workers: usize) -> f64 {
    let registry = cca::SolverRegistry::with_defaults();
    let solvers: Vec<_> = (0..STREAM_LEN)
        .map(|i| {
            let config = if i % 3 == 0 {
                SolverConfig::new("ida-grouped").group_size(8)
            } else {
                SolverConfig::new("ida")
            };
            registry.build(&config).unwrap()
        })
        .collect();
    instance.tree().store().clear_cache();
    let config = ServeConfig::default()
        .workers(workers)
        .queue_capacity(STREAM_LEN)
        .aging_period(8);
    let start = Instant::now();
    let (completed, aborted) = serve(config, |handle| {
        let tickets: Vec<Ticket<bool>> = solvers
            .iter()
            .enumerate()
            .map(|(i, solver)| {
                let ctx = QueryContext::new()
                    .with_priority(if i % 5 == 0 {
                        Priority::High
                    } else {
                        Priority::Normal
                    })
                    .with_io_budget(STREAM_BUDGET);
                let solver = &**solver;
                handle
                    .submit(
                        Request::new(move |ctx: &QueryContext| {
                            let problem = instance.problem().with_context(ctx);
                            solver.run(&problem).is_complete()
                        })
                        .context(ctx),
                    )
                    .expect("queue sized to the stream")
            })
            .collect();
        let mut completed = 0usize;
        let mut aborted = 0usize;
        for t in tickets {
            if t.wait() {
                completed += 1;
            } else {
                aborted += 1;
            }
        }
        (completed, aborted)
    });
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(completed + aborted, STREAM_LEN);
    STREAM_LEN as f64 / wall
}

struct Row {
    workload: &'static str,
    workers: usize,
    qps: f64,
}

fn main() {
    let instance = build();
    println!(
        "# |P|={} pages={} buffer={} pages shards={}",
        instance.customers().len(),
        instance.tree().store().num_pages(),
        instance.tree().store().buffer_capacity(),
        instance.tree().store().num_shards(),
    );
    let queries = batch_queries();
    let mut rows: Vec<Row> = Vec::new();
    for &workers in &THREAD_COUNTS {
        // Warmup (cold allocator/scheduler), then best-of-REPEATS.
        batch_round(&instance, &queries, workers);
        stream_round(&instance, workers);
        let mut best_batch = 0.0f64;
        let mut best_stream = 0.0f64;
        for _ in 0..REPEATS {
            best_batch = best_batch.max(batch_round(&instance, &queries, workers));
            best_stream = best_stream.max(stream_round(&instance, workers));
        }
        println!("workers={workers:2}  batch={best_batch:7.2} q/s  stream={best_stream:7.2} q/s");
        rows.push(Row {
            workload: "batch",
            workers,
            qps: best_batch,
        });
        rows.push(Row {
            workload: "stream",
            workers,
            qps: best_stream,
        });
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            // Worker counts beyond the host's cores measure scheduling
            // overhead, not scaling — tag those rows so chart tooling can
            // drop them instead of readers having to know the host.
            let oversub = if r.workers > host_cores {
                ", \"oversubscribed\": true"
            } else {
                ""
            };
            format!(
                "    {{\"workload\": \"{}\", \"workers\": {}, \"qps\": {:.2}{}}}",
                r.workload, r.workers, r.qps, oversub
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"config\": {{\"customers\": 12000, \
         \"providers\": 24, \"page_size\": 1024, \"buffer_percent\": 8.0, \"shards\": 8, \
         \"stream_len\": {STREAM_LEN}, \"stream_io_budget\": {STREAM_BUDGET}, \
         \"host_cores\": {host_cores}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
