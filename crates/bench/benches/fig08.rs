//! Figure 8 — CPU time vs. capacity k: SSPA baseline vs. RIA/NIA/IDA on a
//! memory-resident instance (paper: |Q| = 250, |P| = 25 K).
//!
//! Expected shape: "Our methods are one to three orders of magnitude faster
//! than SSPA" (§5.2).

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::SolverConfig;
use cca_bench::{build_instance, header, measure, print_exact_table, shape_check, Scale, K_RANGE};

fn main() {
    let scale = Scale::from_env();
    let nq = scale.count(250);
    let np = scale.count(25_000);
    header(
        "Figure 8",
        "CPU time vs k — SSPA vs incremental algorithms",
        &format!("|Q| = {nq}, |P| = {np} (paper: 250 / 25K), memory-resident"),
    );

    let mut rows = Vec::new();
    for k in K_RANGE {
        let cfg = WorkloadConfig {
            num_providers: nq,
            num_customers: np,
            capacity: CapacitySpec::Fixed(k),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        };
        let instance = build_instance(&cfg);
        for config in [
            SolverConfig::new("sspa"),
            SolverConfig::new("ria").theta(scale.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, k));
        }
    }
    print_exact_table(&rows);

    // Shape checks against §5.2's claims.
    for k in K_RANGE {
        let kstr = k.to_string();
        let cpu = |name: &str| {
            rows.iter()
                .find(|r| r.series == name && r.x == kstr)
                .map(|r| r.cpu_s)
                .unwrap()
        };
        shape_check(
            &format!("k={k}: every incremental algorithm beats SSPA in CPU time"),
            cpu("RIA") < cpu("SSPA") && cpu("NIA") < cpu("SSPA") && cpu("IDA") < cpu("SSPA"),
        );
        // RIA's weakness is I/O, not CPU (§3.2), so the CPU comparison is
        // IDA vs NIA; totals including charged I/O put RIA last.
        shape_check(
            &format!("k={k}: IDA's CPU time is at most NIA's"),
            cpu("IDA") <= cpu("NIA") * 1.05,
        );
    }
}
