//! Network-serving throughput: requests/second through the full stack —
//! TCP loopback, frame codec, gateway, persistent serving instance — for
//! rising client counts.
//!
//! Three request classes per client count:
//!
//! * `ping_rps` — empty round trips: the wire + scheduling floor.
//! * `inline_rps` — tiny inline solves (the whole problem rides the
//!   request): codec + solve, no storage.
//! * `dataset_rps` — IDA over a preloaded disk-backed dataset with a warm
//!   cache: the serving path a long-lived deployment runs.
//!
//! Writes `BENCH_net.json` (override the path with `CCA_BENCH_OUT`). Run
//! with `cargo bench --bench net_throughput`.

use std::sync::Arc;
use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{ServeConfig, SolverConfig, SpatialAssignment, TenantId};
use cca_net::{Gateway, NetClient, NetServer, ProblemSpec, SolveRequest};

const WORKERS: usize = 4;
const QUEUE: usize = 64;
const PINGS_PER_CLIENT: usize = 2_000;
const INLINE_PER_CLIENT: usize = 200;
const DATASET_PER_CLIENT: usize = 30;
const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];

fn dataset() -> Arc<SpatialAssignment> {
    let w = WorkloadConfig {
        num_providers: 16,
        num_customers: 8_000,
        capacity: CapacitySpec::Fixed(600),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 33,
    }
    .generate();
    Arc::new(SpatialAssignment::build_with_storage_sharded(
        w.providers,
        w.customers,
        1024,
        8.0,
        8,
    ))
}

fn inline_problem() -> ProblemSpec {
    let w = WorkloadConfig {
        num_providers: 4,
        num_customers: 60,
        capacity: CapacitySpec::Fixed(20),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 34,
    }
    .generate();
    ProblemSpec::Inline {
        providers: w.providers,
        customers: w.customers,
    }
}

/// Drives `per_client` requests from each of `clients` threads and
/// returns aggregate requests/second.
fn drive(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    request: impl Fn(&mut NetClient) + Send + Sync + 'static,
) -> f64 {
    let request = Arc::new(request);
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let request = Arc::clone(&request);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, TenantId(c as u32 + 1)).expect("connect");
                for _ in 0..per_client {
                    request(&mut client);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    (clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let data = dataset();
    let gateway = Arc::new(
        Gateway::builder()
            .serve_config(
                ServeConfig::default()
                    .workers(WORKERS)
                    .queue_capacity(QUEUE),
            )
            .dataset("paper", Arc::clone(&data))
            .start(),
    );
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&gateway)).expect("bind");
    let addr = server.local_addr();

    // Warm the buffer pool once so `dataset_rps` measures the steady
    // state, not the first cold scan.
    {
        let mut client = NetClient::connect(addr, TenantId(99)).expect("connect");
        client
            .solve(SolveRequest::new(
                SolverConfig::new("ida"),
                ProblemSpec::Dataset("paper".into()),
            ))
            .expect("warmup solve");
    }

    let mut rows = Vec::new();
    for clients in CLIENT_COUNTS {
        let ping_rps = drive(addr, clients, PINGS_PER_CLIENT, |c| {
            c.ping().expect("ping");
        });
        let inline = inline_problem();
        let inline_rps = drive(addr, clients, INLINE_PER_CLIENT, move |c| {
            c.solve(SolveRequest::new(SolverConfig::new("sspa"), inline.clone()))
                .expect("inline solve");
        });
        let dataset_rps = drive(addr, clients, DATASET_PER_CLIENT, |c| {
            c.solve(SolveRequest::new(
                SolverConfig::new("ida"),
                ProblemSpec::Dataset("paper".into()),
            ))
            .expect("dataset solve");
        });
        println!(
            "clients {clients}: ping {ping_rps:.0} rps, inline {inline_rps:.1} rps, \
             dataset {dataset_rps:.1} rps"
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"ping_rps\": {ping_rps:.1}, \
             \"inline_rps\": {inline_rps:.2}, \"dataset_rps\": {dataset_rps:.2}}}"
        ));
    }
    server.shutdown();

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"config\": {{\"customers\": 8000, \
         \"providers\": 16, \"page_size\": 1024, \"buffer_percent\": 8.0, \"shards\": 8, \
         \"workers\": {WORKERS}, \"queue\": {QUEUE}, \"pings_per_client\": {PINGS_PER_CLIENT}, \
         \"inline_per_client\": {INLINE_PER_CLIENT}, \
         \"dataset_per_client\": {DATASET_PER_CLIENT}, \
         \"host_cores\": {host_cores}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_net.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
