//! Figure 9 — |Esub| and total time vs. capacity k (paper defaults:
//! |Q| = 1 K, |P| = 100 K).
//!
//! Expected shape (§5.2): all algorithms use a small fragment of the
//! complete bipartite graph; IDA explores the fewest edges while
//! `k·|Q| < |P|`; I/O follows |Esub|; total cost rises with k.

use cca::datagen::CapacitySpec;
use cca::SolverConfig;
use cca_bench::{
    build_instance, default_config, header, measure, print_exact_table, shape_check, Scale, K_RANGE,
};

fn main() {
    let scale = Scale::from_env();
    let base = default_config(scale);
    header(
        "Figure 9",
        "|Esub| and total time vs k",
        &format!(
            "|Q| = {}, |P| = {} (paper: 1K / 100K), k in {:?}",
            base.num_providers, base.num_customers, K_RANGE
        ),
    );
    println!(
        "FULL bipartite graph |Q|x|P| = {}",
        base.num_providers * base.num_customers
    );

    let mut rows = Vec::new();
    for k in K_RANGE {
        let cfg = cca::datagen::WorkloadConfig {
            capacity: CapacitySpec::Fixed(k),
            ..base.clone()
        };
        let instance = build_instance(&cfg);
        for config in [
            SolverConfig::new("ria").theta(scale.tuned_theta()),
            SolverConfig::new("nia"),
            SolverConfig::new("ida"),
        ] {
            rows.push(measure(&instance, &config, k));
        }
    }
    print_exact_table(&rows);

    let full = (base.num_providers * base.num_customers) as u64;
    for k in K_RANGE {
        let kstr = k.to_string();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.series == name && r.x == kstr)
                .unwrap()
        };
        shape_check(
            &format!("k={k}: every |Esub| is a fragment of the full graph"),
            get("RIA").esub < full && get("NIA").esub < full && get("IDA").esub < full,
        );
        shape_check(
            &format!("k={k}: IDA explores no more edges than NIA and RIA"),
            get("IDA").esub <= get("NIA").esub && get("IDA").esub <= get("RIA").esub,
        );
    }
    // IDA's pruning is strongest when k|Q| < |P| (§5.2).
    let ratio = |k: u32| {
        let kstr = k.to_string();
        let nia = rows
            .iter()
            .find(|r| r.series == "NIA" && r.x == kstr)
            .unwrap();
        let ida = rows
            .iter()
            .find(|r| r.series == "IDA" && r.x == kstr)
            .unwrap();
        nia.esub as f64 / ida.esub as f64
    };
    shape_check(
        "IDA/NIA pruning gap is larger at k=20 than at k=320",
        ratio(20) > ratio(320),
    );
}
