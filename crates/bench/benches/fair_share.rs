//! Tenant-fairness benchmark: dispatch shares and per-tenant latency under
//! the two-level DRR scheduler.
//!
//! One shared instance, two tenants each flooding an equal burst of
//! budgeted IDA queries at the same priority. For weight ratios 1:1, 2:1
//! and 4:1 the bench records
//!
//! * the throughput of the whole burst (queries/second),
//! * tenant A's share of the dispatches made while *both* tenants were
//!   still backlogged (the DRR share — ≈ w/(w+1)),
//! * each tenant's mean submit→finish latency from [`TenantStats`] (the
//!   weighted tenant should wait less).
//!
//! Writes `BENCH_fair.json` (override the path with `CCA_BENCH_OUT`). Run
//! with `cargo bench --bench fair_share`.

use std::sync::Mutex;
use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::serve::{serve, Request, ServeConfig};
use cca::{QueryContext, SolverConfig, SolverRegistry, SpatialAssignment, TenantId, TenantQuota};

const A: TenantId = TenantId(1);
const B: TenantId = TenantId(2);
const BURST_PER_TENANT: usize = 32;
const IO_BUDGET: u64 = 300;
const WORKERS: usize = 2;
const REPEATS: usize = 5;

fn build() -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 24,
        num_customers: 12_000,
        capacity: CapacitySpec::Fixed(60),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 11,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 8.0, 8)
}

struct Round {
    qps: f64,
    /// Tenant A's dispatch share while both tenants were backlogged.
    share_a: f64,
    mean_latency_a_ms: f64,
    mean_latency_b_ms: f64,
}

fn round(instance: &SpatialAssignment, weight_a: u32) -> Round {
    let registry = SolverRegistry::with_defaults();
    let solvers: Vec<_> = (0..2 * BURST_PER_TENANT)
        .map(|_| registry.build(&SolverConfig::new("ida")).unwrap())
        .collect();
    instance.tree().store().clear_cache();
    let order: Mutex<Vec<TenantId>> = Mutex::new(Vec::new());
    let config = ServeConfig::default()
        .workers(WORKERS)
        .queue_capacity(2 * BURST_PER_TENANT)
        .aging_period(8)
        .tenant_quota(A, TenantQuota::default().weight(weight_a));
    let start = Instant::now();
    let (stats_a, stats_b) = serve(config, |handle| {
        let order = &order;
        let tickets: Vec<_> = solvers
            .iter()
            .enumerate()
            .map(|(i, solver)| {
                let tenant = if i % 2 == 0 { A } else { B };
                let solver = &**solver;
                handle
                    .submit(
                        Request::new(move |ctx: &QueryContext| {
                            order.lock().unwrap().push(ctx.tenant());
                            let problem = instance.problem().with_context(ctx);
                            solver.run(&problem).is_complete()
                        })
                        .context(
                            QueryContext::new()
                                .with_tenant(tenant)
                                .with_io_budget(IO_BUDGET),
                        ),
                    )
                    .expect("queue sized to the burst")
            })
            .collect();
        for t in tickets {
            t.wait();
        }
        (
            handle.tenant_stats_for(A).unwrap(),
            handle.tenant_stats_for(B).unwrap(),
        )
    });
    let wall = start.elapsed().as_secs_f64();
    // Share while both backlogged: cut the order at the point where either
    // tenant has been fully dispatched.
    let order = order.into_inner().unwrap();
    let (mut seen_a, mut seen_b, mut a_in_window, mut window) = (0usize, 0usize, 0usize, 0usize);
    for &t in &order {
        if seen_a == BURST_PER_TENANT || seen_b == BURST_PER_TENANT {
            break;
        }
        window += 1;
        if t == A {
            seen_a += 1;
            a_in_window += 1;
        } else {
            seen_b += 1;
        }
    }
    Round {
        qps: (2 * BURST_PER_TENANT) as f64 / wall,
        share_a: a_in_window as f64 / window.max(1) as f64,
        mean_latency_a_ms: stats_a.mean_latency().as_secs_f64() * 1e3,
        mean_latency_b_ms: stats_b.mean_latency().as_secs_f64() * 1e3,
    }
}

fn main() {
    let instance = build();
    println!(
        "# |P|={} pages={} buffer={} pages shards={}",
        instance.customers().len(),
        instance.tree().store().num_pages(),
        instance.tree().store().buffer_capacity(),
        instance.tree().store().num_shards(),
    );
    let mut rows = Vec::new();
    for weight_a in [1u32, 2, 4] {
        round(&instance, weight_a); // warmup
        let mut best: Option<Round> = None;
        for _ in 0..REPEATS {
            let r = round(&instance, weight_a);
            if best.as_ref().is_none_or(|b| r.qps > b.qps) {
                best = Some(r);
            }
        }
        let best = best.expect("REPEATS > 0");
        println!(
            "weights {weight_a}:1  qps={:7.2}  shareA={:.2} (ideal {:.2})  latA={:6.1}ms latB={:6.1}ms",
            best.qps,
            best.share_a,
            f64::from(weight_a) / f64::from(weight_a + 1),
            best.mean_latency_a_ms,
            best.mean_latency_b_ms,
        );
        rows.push((weight_a, best));
    }

    let body: Vec<String> = rows
        .iter()
        .map(|(w, r)| {
            format!(
                "    {{\"weight_a\": {w}, \"weight_b\": 1, \"qps\": {:.2}, \"share_a\": {:.3}, \
                 \"mean_latency_a_ms\": {:.2}, \"mean_latency_b_ms\": {:.2}}}",
                r.qps, r.share_a, r.mean_latency_a_ms, r.mean_latency_b_ms
            )
        })
        .collect();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"fair_share\",\n  \"config\": {{\"customers\": 12000, \
         \"providers\": 24, \"page_size\": 1024, \"buffer_percent\": 8.0, \"shards\": 8, \
         \"burst_per_tenant\": {BURST_PER_TENANT}, \"io_budget\": {IO_BUDGET}, \
         \"workers\": {WORKERS}, \"host_cores\": {host_cores}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fair.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
