//! Buffer-pool contention benchmark: sharded vs single-shard under
//! concurrent query load.
//!
//! Two workloads over one shared instance, each at 1/2/4/8 worker threads
//! and with `shards = 1` (the old global-mutex behaviour) vs a sharded
//! pool:
//!
//! * `knn` — threads issuing independent session-attributed kNN searches;
//!   nearly all time is spent inside the page store, so this isolates the
//!   shard locks themselves.
//! * `batch` — the façade's `BatchRunner` executing a mixed solver batch,
//!   the end-to-end serving shape.
//!
//! Writes the measured throughputs to `BENCH_pool.json` (override the path
//! with `CCA_BENCH_OUT`). Run with `cargo bench --bench pool_contention`.

use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::geo::Point;
use cca::storage::QueryContext;
use cca::{SolverConfig, SpatialAssignment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 2] = [1, 8];
const KNN_QUERIES_PER_THREAD: usize = 200;
const KNN_K: usize = 64;
const REPEATS: usize = 11;

fn build(shards: usize) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 24,
        num_customers: 20_000,
        capacity: CapacitySpec::Fixed(100),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 7,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 16.0, shards)
}

/// One concurrent-kNN round: `threads` workers, each with its own query
/// context, issuing independent searches against the shared tree. Returns q/s.
fn knn_round(instance: &SpatialAssignment, threads: usize) -> f64 {
    let tree = instance.tree();
    tree.store().clear_cache();
    tree.store().reset_stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let ctx = QueryContext::new();
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                for _ in 0..KNN_QUERIES_PER_THREAD {
                    let q =
                        Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0));
                    let hits = tree.knn_ctx(q, KNN_K, Some(&ctx)).unwrap();
                    assert_eq!(hits.len(), KNN_K);
                }
                assert!(ctx.stats().logical_reads() > 0);
            });
        }
    });
    (threads * KNN_QUERIES_PER_THREAD) as f64 / start.elapsed().as_secs_f64()
}

/// IDA-heavy solver mix: the incremental NN solvers live on the page
/// store, so the batch actually exercises the pool (CA/SA are mostly
/// solver CPU).
fn batch_queries() -> Vec<SolverConfig> {
    let mut queries = Vec::new();
    for group_size in [4, 8, 16] {
        queries.push(SolverConfig::new("ida-grouped").group_size(group_size));
    }
    for _ in 0..3 {
        queries.push(SolverConfig::new("ida"));
    }
    for delta in [10.0, 20.0] {
        queries.push(SolverConfig::new("ca").delta(delta));
        queries.push(SolverConfig::new("sa").delta(2.0 * delta));
    }
    queries
}

/// One mixed batch through the `BatchRunner`. Returns queries/second.
fn batch_round(instance: &SpatialAssignment, queries: &[SolverConfig], threads: usize) -> f64 {
    let runner = instance.batch().threads(threads);
    let start = Instant::now();
    let report = runner.run(queries).expect("registered solvers");
    let wall = start.elapsed().as_secs_f64();
    // Attribution must hold under every thread/shard combination.
    let fault_sum: u64 = report.results.iter().map(|r| r.stats.io.faults).sum();
    assert_eq!(fault_sum, report.io.faults, "per-query faults must sum up");
    queries.len() as f64 / wall
}

struct Row {
    workload: &'static str,
    shards: usize,
    threads: usize,
    qps: f64,
}

fn main() {
    // Both configurations are built up front and measured *interleaved*,
    // round-robin within every repeat, so clock/thermal drift over the
    // run cannot systematically favour whichever config runs later.
    let instances: Vec<(usize, SpatialAssignment)> = SHARD_COUNTS
        .iter()
        .map(|&shards| (shards, build(shards)))
        .collect();
    for (shards, instance) in &instances {
        println!(
            "# shards={shards}: |P|={} pages={} buffer={} pages",
            instance.customers().len(),
            instance.tree().store().num_pages(),
            instance.tree().store().buffer_capacity(),
        );
    }
    let queries = batch_queries();
    let mut rows: Vec<Row> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut best_knn = vec![0.0f64; instances.len()];
        let mut best_batch = vec![0.0f64; instances.len()];
        // Warmup round per configuration (cold allocator/scheduler).
        for (_, instance) in &instances {
            knn_round(instance, threads);
            batch_round(instance, &queries, threads);
        }
        for _ in 0..REPEATS {
            for (i, (_, instance)) in instances.iter().enumerate() {
                best_knn[i] = best_knn[i].max(knn_round(instance, threads));
                best_batch[i] = best_batch[i].max(batch_round(instance, &queries, threads));
            }
        }
        for (i, (shards, _)) in instances.iter().enumerate() {
            println!(
                "shards={shards:2} threads={threads:2}  knn={:9.1} q/s  batch={:7.2} q/s",
                best_knn[i], best_batch[i]
            );
            rows.push(Row {
                workload: "knn",
                shards: *shards,
                threads,
                qps: best_knn[i],
            });
            rows.push(Row {
                workload: "batch",
                shards: *shards,
                threads,
                qps: best_batch[i],
            });
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            // Rows run with more worker threads than the host has cores
            // measure time-slicing, not parallel speedup — tag them so
            // downstream readers never compare them against true scaling.
            let oversub = if r.threads > host_cores {
                ", \"oversubscribed\": true"
            } else {
                ""
            };
            format!(
                "    {{\"workload\": \"{}\", \"shards\": {}, \"threads\": {}, \
                 \"host_cores\": {host_cores}{oversub}, \"qps\": {:.2}}}",
                r.workload, r.shards, r.threads, r.qps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pool_contention\",\n  \"config\": {{\"customers\": 20000, \
         \"providers\": 24, \"page_size\": 1024, \"buffer_percent\": 16.0, \
         \"knn_queries_per_thread\": {KNN_QUERIES_PER_THREAD}, \"knn_k\": {KNN_K}, \
         \"host_cores\": {host_cores}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    // Default to the workspace root (cargo bench runs in the package dir).
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pool.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    // The headline claim: at 8 worker threads a sharded pool must not be
    // slower than the single-shard (old global-mutex) configuration.
    let qps = |workload: &str, shards: usize| {
        rows.iter()
            .find(|r| r.workload == workload && r.shards == shards && r.threads == 8)
            .map(|r| r.qps)
            .unwrap()
    };
    for workload in ["knn", "batch"] {
        let sharded = qps(workload, 8);
        let single = qps(workload, 1);
        println!(
            "{workload}@8t: sharded {sharded:.1} q/s vs single-shard {single:.1} q/s ({:+.1}%)",
            (sharded / single - 1.0) * 100.0
        );
    }
}
