//! Figure 14 — approximation quality and running time vs. δ
//! (SAN/SAE/CAN/CAE against exact IDA, paper defaults otherwise).
//!
//! Expected shape (§5.3): CA beats SA in both quality and time for all δ
//! except the smallest, where SA approaches exactness at near-IDA cost;
//! accuracy and cost both drop as δ grows.

use cca::core::RefineMethod;
use cca::SolverConfig;
use cca_bench::{
    build_instance, default_config, header, measure, print_approx_table, print_exact_table,
    shape_check, Scale, DELTA_RANGE,
};

fn main() {
    let scale = Scale::from_env();
    let base = default_config(scale);
    header(
        "Figure 14",
        "approximation quality & time vs δ",
        &format!(
            "|Q| = {}, |P| = {}, k = 80, δ in {DELTA_RANGE:?}",
            base.num_providers, base.num_customers
        ),
    );

    let instance = build_instance(&base);
    let exact = measure(&instance, &SolverConfig::new("ida"), "ref");
    println!("exact reference (IDA):");
    print_exact_table(std::slice::from_ref(&exact));

    let mut rows = Vec::new();
    for delta in DELTA_RANGE {
        for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            rows.push(measure(
                &instance,
                &SolverConfig::new("sa").delta(delta).refine(refine),
                delta,
            ));
            rows.push(measure(
                &instance,
                &SolverConfig::new("ca").delta(delta).refine(refine),
                delta,
            ));
        }
    }
    print_approx_table(&rows, |_| exact.cost);

    let quality = |series: &str, delta: f64| {
        rows.iter()
            .find(|r| r.series == series && r.x == delta.to_string())
            .unwrap()
            .cost
            / exact.cost
    };
    for delta in DELTA_RANGE {
        shape_check(
            &format!("δ={delta}: every approximation is within its quality band (>= 1)"),
            quality("SAN", delta) >= 1.0 - 1e-9 && quality("CAN", delta) >= 1.0 - 1e-9,
        );
    }
    shape_check(
        "CA quality at δ=10 is near-optimal (within 25%)",
        quality("CAN", 10.0) < 1.25,
    );
    // The paper picks δ=40 for SA and δ=10 for CA as the best
    // efficiency/accuracy trade-offs (§5.3); at those operating points CA
    // must win on both axes.
    let trade_total = |series: &str, delta: f64| {
        let r = rows
            .iter()
            .find(|r| r.series == series && r.x == delta.to_string())
            .unwrap();
        r.cpu_s + r.io_s
    };
    shape_check(
        "CA@δ=10 beats SA@δ=40 in quality at the paper's trade-off points",
        quality("CAN", 10.0) <= quality("SAN", 40.0),
    );
    shape_check(
        "CA@δ=10 beats SA@δ=40 in total time at the paper's trade-off points",
        trade_total("CAN", 10.0) < trade_total("SAN", 40.0),
    );
    let total = |series: &str, delta: f64| {
        let r = rows
            .iter()
            .find(|r| r.series == series && r.x == delta.to_string())
            .unwrap();
        r.cpu_s + r.io_s
    };
    shape_check(
        "approximation is faster than exact IDA at δ>=40",
        total("CAN", 40.0) < exact.cpu_s + exact.io_s
            && total("SAN", 40.0) < exact.cpu_s + exact.io_s,
    );
}
