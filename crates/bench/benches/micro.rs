//! Criterion microbenchmarks for the substrate components: R-tree
//! operations, flow-graph shortest paths, Hilbert ordering and the
//! refinement heuristics. These guard the constants behind the figure-level
//! experiments.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use cca::core::approx::refine::{exclusive_nn, nn_based, RefineProvider};
use cca::flow::{solve_complete_bipartite, unit_customers, DijkstraState, FlowGraph, FlowProvider};
use cca::geo::{hilbert, Point};
use cca::rtree::RTree;
use cca::storage::PageStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect()
}

fn items(n: usize, seed: u64) -> Vec<(Point, u64)> {
    random_points(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    for n in [1_000usize, 10_000] {
        let data = items(n, 1);
        g.bench_with_input(BenchmarkId::new("bulk_load", n), &data, |b, data| {
            b.iter_batched(
                || PageStore::with_config(1024, 4096),
                |store| black_box(RTree::bulk_load(store, data)),
                BatchSize::LargeInput,
            );
        });

        let tree = RTree::bulk_load(PageStore::with_config(1024, 8192), &data);
        g.bench_with_input(BenchmarkId::new("range_r50", n), &tree, |b, tree| {
            b.iter(|| black_box(tree.range_search(Point::new(500.0, 500.0), 50.0)));
        });
        g.bench_with_input(BenchmarkId::new("knn_100", n), &tree, |b, tree| {
            b.iter(|| black_box(tree.knn(Point::new(500.0, 500.0), 100)));
        });
        g.bench_with_input(BenchmarkId::new("inc_nn_500", n), &tree, |b, tree| {
            b.iter(|| {
                let mut cur = tree.inc_nn(Point::new(250.0, 750.0));
                for _ in 0..500 {
                    black_box(cur.next());
                }
            });
        });
    }
    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow");
    // Dijkstra over a pre-built sparse residual graph.
    let mut graph = FlowGraph::with_nodes(2002);
    let mut rng = StdRng::seed_from_u64(2);
    for u in 0..2000u32 {
        for _ in 0..5 {
            let v = rng.random_range(0..2000u32);
            graph.add_edge(u + 2, v + 2, 1, rng.random_range(0.1..100.0));
        }
    }
    for u in 0..64u32 {
        graph.add_edge(0, u + 2, 4, 0.0);
        graph.add_edge(2000 - u, 1, 4, 0.0);
    }
    g.bench_function("dijkstra_10k_arcs", |b| {
        let mut dij = DijkstraState::new();
        b.iter(|| {
            dij.init(&graph, 0);
            black_box(dij.run_until(&graph, 1));
        });
    });

    // Full SSPA on a small CCA instance (the Figure 8 baseline's kernel).
    let providers: Vec<FlowProvider> = random_points(20, 3)
        .into_iter()
        .map(|pos| FlowProvider { pos, cap: 5 })
        .collect();
    let customers = unit_customers(&random_points(200, 4));
    g.bench_function("sspa_20x200", |b| {
        b.iter(|| black_box(solve_complete_bipartite(&providers, &customers)));
    });
    g.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hilbert");
    g.bench_function("xy_to_d", |b| {
        b.iter(|| black_box(hilbert::xy_to_d(black_box(12345), black_box(54321))));
    });
    let pts = random_points(10_000, 5);
    g.bench_function("sort_10k_points", |b| {
        b.iter(|| black_box(hilbert::sort_by_hilbert(&pts, 1000.0)));
    });
    g.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut g = c.benchmark_group("refine");
    let providers: Vec<RefineProvider> = random_points(10, 6)
        .into_iter()
        .enumerate()
        .map(|(i, pos)| RefineProvider {
            original: i,
            pos,
            quota: 40,
        })
        .collect();
    let customers: Vec<(Point, u64)> = random_points(400, 7)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    g.bench_function("nn_based_10x400", |b| {
        b.iter(|| black_box(nn_based(&providers, &customers)));
    });
    g.bench_function("exclusive_nn_10x400", |b| {
        b.iter(|| black_box(exclusive_nn(&providers, &customers)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rtree, bench_flow, bench_hilbert, bench_refine
}
criterion_main!(benches);
