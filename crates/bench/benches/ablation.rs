//! Ablations of the design choices DESIGN.md calls out (not in the paper's
//! figures, but quantifying each optimisation's contribution):
//!
//! 1. IDA's Theorem-2 fast phase on/off,
//! 2. PUA Dijkstra reuse on/off (applies to NIA and IDA),
//! 3. IDA key mode: paper (stale α kept) vs. safe (per-iteration α),
//! 4. grouped incremental ANN (§3.4.2) group size sweep,
//! 5. buffer pool size sweep (the paper fixes 1%),
//! 6. RIA's θ sensitivity (§3.2 motivates NIA by θ being hard to tune).

use cca::core::exact::{ida, nia, ria, IdaConfig, IdaKeyMode, NiaConfig, RiaConfig, RtreeSource};
use cca::datagen::CapacitySpec;
use cca::geo::Point;
use cca::SolverConfig;
use cca_bench::{build_instance, default_config, header, measure, print_exact_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    // k = 40 instead of the default 80: the no-PUA variants pay a full
    // Dijkstra per edge insertion (that cost being the point of the
    // ablation), which at k = 80 would dominate the whole bench run.
    let base = cca::datagen::WorkloadConfig {
        capacity: CapacitySpec::Fixed(40),
        ..default_config(scale)
    };
    header(
        "Ablation",
        "contribution of each optimisation",
        &format!(
            "|Q| = {}, |P| = {}, k = 40",
            base.num_providers, base.num_customers
        ),
    );
    let instance = build_instance(&base);
    let qpos: Vec<Point> = instance.providers().iter().map(|&(p, _)| p).collect();
    let providers = instance.providers().to_vec();

    let run_ida = |label: &str, cfg: IdaConfig| -> Row {
        instance.tree().store().clear_cache();
        instance.tree().store().reset_stats();
        let mut src = RtreeSource::new(instance.tree(), qpos.clone());
        let t0 = std::time::Instant::now();
        let (m, stats) = ida(&providers, &mut src, &cfg);
        let cpu = t0.elapsed();
        m.validate_unit(instance.providers(), instance.customers())
            .expect("ablation variants must stay exact");
        Row {
            series: label.to_string(),
            x: "-".into(),
            cost: m.cost(),
            esub: stats.esub_edges,
            faults: instance.tree().io_stats().faults,
            cpu_s: cpu.as_secs_f64(),
            io_s: instance.tree().io_stats().charged_io_time_s(),
            wall_s: cpu.as_secs_f64(),
        }
    };

    println!("\n-- IDA variants ------------------------------------------------");
    let mut rows = vec![
        run_ida("ida(full)", IdaConfig::default()),
        run_ida(
            "ida-fast",
            IdaConfig {
                disable_fast_phase: true,
                ..Default::default()
            },
        ),
        run_ida(
            "ida-pua",
            IdaConfig {
                disable_pua: true,
                ..Default::default()
            },
        ),
        run_ida(
            "ida(safe)",
            IdaConfig {
                key_mode: IdaKeyMode::Safe,
                ..Default::default()
            },
        ),
    ];
    print_exact_table(&rows);

    println!("\n-- NIA with / without PUA --------------------------------------");
    rows.clear();
    for (label, use_pua) in [("nia(pua)", true), ("nia-pua", false)] {
        instance.tree().store().clear_cache();
        instance.tree().store().reset_stats();
        let mut src = RtreeSource::new(instance.tree(), qpos.clone());
        let t0 = std::time::Instant::now();
        let (m, stats) = nia(&providers, &mut src, &NiaConfig { use_pua });
        let cpu = t0.elapsed();
        rows.push(Row {
            series: label.to_string(),
            x: "-".into(),
            cost: m.cost(),
            esub: stats.esub_edges,
            faults: instance.tree().io_stats().faults,
            cpu_s: cpu.as_secs_f64(),
            io_s: instance.tree().io_stats().charged_io_time_s(),
            wall_s: cpu.as_secs_f64(),
        });
    }
    print_exact_table(&rows);

    println!("\n-- grouped ANN (group size sweep; 1 = plain cursors) ------------");
    rows.clear();
    rows.push(measure(&instance, &SolverConfig::new("ida"), "g=1"));
    for g in [4usize, 8, 16, 32] {
        rows.push(measure(
            &instance,
            &SolverConfig::new("ida-grouped").group_size(g),
            format!("g={g}"),
        ));
    }
    print_exact_table(&rows);

    println!("\n-- buffer size sweep (pages; paper fixes 1% of the tree) --------");
    rows.clear();
    for pages in [4usize, 16, 64, 256] {
        instance.tree().store().set_buffer_capacity(pages);
        rows.push(measure(
            &instance,
            &SolverConfig::new("ida"),
            format!("{pages}p"),
        ));
    }
    print_exact_table(&rows);
    // Restore the experiment setting.
    instance
        .tree()
        .store()
        .set_buffer_capacity(cca_bench::BUFFER_FLOOR_PAGES);

    println!("\n-- RIA θ sensitivity (§3.2: θ is hard to fine-tune) --------------");
    rows.clear();
    for factor in [0.25, 1.0, 4.0] {
        let theta = scale.tuned_theta() * factor;
        instance.tree().store().clear_cache();
        instance.tree().store().reset_stats();
        let mut src = RtreeSource::new(instance.tree(), qpos.clone());
        let t0 = std::time::Instant::now();
        let (m, stats) = ria(&providers, &mut src, &RiaConfig { theta });
        let cpu = t0.elapsed();
        rows.push(Row {
            series: format!("θ={theta:.1}"),
            x: "-".into(),
            cost: m.cost(),
            esub: stats.esub_edges,
            faults: instance.tree().io_stats().faults,
            cpu_s: cpu.as_secs_f64(),
            io_s: instance.tree().io_stats().charged_io_time_s(),
            wall_s: cpu.as_secs_f64(),
        });
    }
    print_exact_table(&rows);
}
