//! Approximate-tier benchmark: the PR 8 coreset and deterministic-annealing
//! solvers against the best exact engine.
//!
//! Two disk-backed instances with the skew the tier is built for (Zipf
//! provider capacities, Zipf-clustered customers):
//!
//! * **10⁵ customers** — `ida` and `ida-grouped` still finish, so the row
//!   set carries the headline comparison: the coreset solve must be an
//!   order of magnitude faster at a mean cost ratio within a few percent
//!   of the exact optimum. `da` rides along as the independent baseline.
//! * **10⁶ customers** — beyond the exact engines' patience budget; the
//!   rows report the approximate tier alone: wall time, queries/s, peak
//!   attributed I/O (each run is a fresh [`QueryContext`] on a cold
//!   cache), and the coreset cost relative to `da`.
//!
//! Writes `BENCH_approx.json` (override with `CCA_BENCH_OUT`). Run with
//! `cargo bench --bench approx_tier`; pass `-- --quick` for a smoke run on
//! shrunken instances (CI uses this to assert the tier runs end-to-end and
//! the JSON stays valid — quick ratios are noisy and not asserted).

use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{QueryContext, SolverConfig, SpatialAssignment};

struct ScaleSpec {
    customers: usize,
    providers: usize,
    capacity: CapacitySpec,
    coreset_size: usize,
    /// Run the exact baselines (only at the scale where they finish).
    exact: bool,
}

struct Run {
    solver: &'static str,
    wall_s: f64,
    cost: f64,
    faults: u64,
    size: u64,
}

fn scales(quick: bool) -> Vec<ScaleSpec> {
    if quick {
        vec![
            ScaleSpec {
                customers: 4_000,
                providers: 32,
                capacity: CapacitySpec::Zipf { lo: 20, hi: 400 },
                coreset_size: 512,
                exact: true,
            },
            ScaleSpec {
                customers: 12_000,
                providers: 48,
                capacity: CapacitySpec::Zipf { lo: 50, hi: 800 },
                coreset_size: 1_024,
                exact: false,
            },
        ]
    } else {
        // Both scales follow the paper's regime: γ = Σcap ≪ |P|, so the
        // solvers pick *which* customers to serve. A surplus-capacity
        // instance (γ = |P|) puts the exact engines hours out of reach
        // already at 10⁵ and would leave nothing to compare against.
        vec![
            ScaleSpec {
                customers: 100_000,
                providers: 200,
                capacity: CapacitySpec::Zipf { lo: 20, hi: 400 },
                coreset_size: 4_096,
                exact: true,
            },
            ScaleSpec {
                customers: 1_000_000,
                providers: 600,
                capacity: CapacitySpec::Zipf { lo: 100, hi: 2_000 },
                coreset_size: 8_192,
                exact: false,
            },
        ]
    }
}

/// One cold solve under its own context: exact per-query attribution.
fn timed_run(instance: &SpatialAssignment, solver: &'static str, cfg: &SolverConfig) -> Run {
    let ctx = QueryContext::new();
    let start = Instant::now();
    let result = instance
        .run_config_ctx(cfg, &ctx)
        .expect("registered solver");
    let wall_s = start.elapsed().as_secs_f64();
    assert!(result.aborted.is_none(), "{solver}: no budget, no abort");
    assert_eq!(
        result.matching.size(),
        instance.gamma(),
        "{solver}: matching must be full-size"
    );
    Run {
        solver,
        wall_s,
        cost: result.matching.cost(),
        faults: result.stats.io.faults,
        size: result.matching.size(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows: Vec<String> = Vec::new();

    for spec in scales(quick) {
        let w = WorkloadConfig {
            num_providers: spec.providers,
            num_customers: spec.customers,
            capacity: spec.capacity,
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::ZipfClustered { clusters: 16 },
            seed: 83,
        }
        .generate();
        let instance =
            SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 4096, 8.0, 4);
        println!(
            "---- {} customers, {} providers (Σcap {}, γ {}) ----",
            spec.customers,
            spec.providers,
            instance
                .providers()
                .iter()
                .map(|&(_, k)| u64::from(k))
                .sum::<u64>(),
            instance.gamma()
        );

        let mut runs: Vec<Run> = Vec::new();
        if spec.exact {
            for name in ["ida", "ida-grouped"] {
                runs.push(timed_run(&instance, name, &SolverConfig::new(name)));
            }
        }
        runs.push(timed_run(
            &instance,
            "coreset",
            &SolverConfig::new("coreset").coreset_size(spec.coreset_size),
        ));
        runs.push(timed_run(&instance, "da", &SolverConfig::new("da")));

        // Reference cost: the exact optimum where available, `da` otherwise
        // (the independent baseline the 10⁶ coreset row is judged against).
        let exact_runs: Vec<&Run> = runs
            .iter()
            .filter(|r| r.solver.starts_with("ida"))
            .collect();
        let best_exact_s = exact_runs
            .iter()
            .map(|r| r.wall_s)
            .fold(f64::INFINITY, f64::min);
        let (ref_cost, ref_name) = match exact_runs.first() {
            Some(r) => (r.cost, "exact"),
            None => (
                runs.iter()
                    .find(|r| r.solver == "da")
                    .expect("da always runs")
                    .cost,
                "da",
            ),
        };

        for r in &runs {
            let qps = 1.0 / r.wall_s;
            let ratio = r.cost / ref_cost;
            let speedup = if spec.exact && !r.solver.starts_with("ida") {
                format!(", \"speedup_vs_exact\": {:.1}", best_exact_s / r.wall_s)
            } else {
                String::new()
            };
            println!(
                "{:12} {:10.2} ms  {:8.3} q/s  cost {:14.1} (ratio {:.4} vs {})  faults {}",
                r.solver,
                r.wall_s * 1e3,
                qps,
                r.cost,
                ratio,
                ref_name,
                r.faults
            );
            rows.push(format!(
                "    {{\"workload\": \"approx_tier\", \"customers\": {}, \"providers\": {}, \
                 \"capacity\": \"{}\", \"solver\": \"{}\", \"ms\": {:.2}, \"qps\": {:.3}, \
                 \"cost\": {:.1}, \"cost_ratio\": {:.4}, \"ratio_vs\": \"{}\", \
                 \"peak_faults\": {}, \"size\": {}{}}}",
                spec.customers,
                spec.providers,
                spec.capacity.label(),
                r.solver,
                r.wall_s * 1e3,
                qps,
                r.cost,
                ratio,
                ref_name,
                r.faults,
                r.size,
                speedup
            ));
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"approx_tier\",\n  \"config\": {{\"page_size\": 4096, \
         \"buffer_percent\": 8.0, \"shards\": 4, \"quick\": {quick}, \
         \"host_cores\": {host_cores}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_approx.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
