//! Flow-core microbenchmark: the min-cost-flow substrate in isolation.
//!
//! * `graph_build` — `add_edge` throughput building the complete bipartite
//!   residual graph (arena SoA columns + intrusive adjacency chains; no
//!   per-node allocation).
//! * `sspa_cold` — full cold SSPA solves with the radix frontier vs. the
//!   binary-heap frontier (the pre-radix engine), same instance. The two
//!   costs are asserted bit-identical — the radix queue is a pure speed
//!   lever, never an answer lever.
//! * `sspa_warm` — warm resume of the identical instance from the cache.
//! * `sspa_profiled` — one profiled cold solve with the solve-phase time
//!   breakdown (settle/augment/heap) and frontier-queue counters.
//!
//! Writes `BENCH_flow.json` (override with `CCA_BENCH_OUT`). Run with
//! `cargo bench --bench flow_core`; pass `-- --quick` for a CI smoke run.

use std::hint::black_box;
use std::time::Instant;

use cca::flow::{
    solve_complete_bipartite_profiled, solve_complete_bipartite_warm_ctx, solve_with_frontier,
    FlowCustomer, FlowGraph, FlowProvider, FrontierKind, SspaCache,
};
use cca::geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Scale {
    quick: bool,
    customers: usize,
    /// Best-of rounds for every workload.
    rounds: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                quick,
                customers: 120,
                rounds: 1,
            }
        } else {
            Scale {
                quick,
                customers: 800,
                rounds: 5,
            }
        }
    }
}

const PROVIDERS: usize = 24;

fn instance(customers: usize) -> (Vec<FlowProvider>, Vec<FlowCustomer>) {
    let mut rng = StdRng::seed_from_u64(11);
    let providers: Vec<FlowProvider> = (0..PROVIDERS)
        .map(|_| FlowProvider {
            pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
            cap: 40,
        })
        .collect();
    let customers: Vec<FlowCustomer> = (0..customers)
        .map(|_| FlowCustomer {
            pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
            weight: 1,
        })
        .collect();
    (providers, customers)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = Scale::new(quick);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (providers, customers) = instance(scale.customers);
    let mut rows: Vec<String> = Vec::new();

    // ---- graph_build: add_edge throughput ---------------------------
    let mut best_edges_per_s = 0.0f64;
    for _ in 0..scale.rounds {
        let start = Instant::now();
        let mut g = FlowGraph::with_nodes(2 + providers.len() + customers.len());
        let mut edges = 0u64;
        for (i, q) in providers.iter().enumerate() {
            g.add_edge(0, (2 + i) as u32, q.cap, 0.0);
            edges += 1;
        }
        for (i, q) in providers.iter().enumerate() {
            for (j, p) in customers.iter().enumerate() {
                g.add_edge(
                    (2 + i) as u32,
                    (2 + providers.len() + j) as u32,
                    p.weight,
                    q.pos.dist(&p.pos),
                );
                edges += 1;
            }
        }
        for (j, p) in customers.iter().enumerate() {
            g.add_edge((2 + providers.len() + j) as u32, 1, p.weight, 0.0);
            edges += 1;
        }
        let rate = edges as f64 / start.elapsed().as_secs_f64() / 1.0e6;
        black_box(&g);
        best_edges_per_s = best_edges_per_s.max(rate);
    }
    println!("graph_build {best_edges_per_s:8.2} Medges/s");
    rows.push(format!(
        "    {{\"workload\": \"graph_build\", \"medges_per_s\": {best_edges_per_s:.2}}}"
    ));

    // ---- sspa_cold: radix vs binary frontier ------------------------
    let mut cold = Vec::new();
    for (name, kind) in [
        ("radix", FrontierKind::Radix),
        ("binary", FrontierKind::Binary),
    ] {
        let mut best_ms = f64::INFINITY;
        let mut settled = 0u64;
        let mut cost_bits = 0u64;
        for _ in 0..scale.rounds {
            let start = Instant::now();
            let (asg, stats) = solve_with_frontier(&providers, &customers, kind);
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            settled = stats.settled;
            cost_bits = asg.cost.to_bits();
        }
        println!("sspa_cold {name:6} {best_ms:8.2} ms  settled={settled}");
        rows.push(format!(
            "    {{\"workload\": \"sspa_cold\", \"frontier\": \"{name}\", \
             \"ms\": {best_ms:.2}, \"settled\": {settled}}}"
        ));
        cold.push(cost_bits);
    }
    assert_eq!(
        cold[0], cold[1],
        "radix and binary frontiers must agree bit-for-bit"
    );

    // ---- sspa_warm: cache resume of the identical instance ----------
    let mut warm_ms = f64::INFINITY;
    let mut warm_settled = 0u64;
    for _ in 0..scale.rounds {
        let cache = SspaCache::new();
        solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
            .expect("no context, no abort");
        let start = Instant::now();
        let (_, stats) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                .expect("no context, no abort");
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
        warm_settled = stats.settled;
        assert!(stats.warm_started, "second solve must resume from cache");
    }
    println!("sspa_warm        {warm_ms:8.2} ms  settled={warm_settled}");
    rows.push(format!(
        "    {{\"workload\": \"sspa_warm\", \"ms\": {warm_ms:.2}, \"settled\": {warm_settled}}}"
    ));

    // ---- sspa_profiled: solve-phase breakdown -----------------------
    let (_, s) = solve_complete_bipartite_profiled(&providers, &customers);
    let (settle_ms, augment_ms, heap_ms) = (
        s.settle_ns as f64 / 1e6,
        s.augment_ns as f64 / 1e6,
        s.heap_ns as f64 / 1e6,
    );
    println!(
        "sspa_profiled    settle={settle_ms:.2} ms augment={augment_ms:.2} ms \
         heap={heap_ms:.2} ms pushes={} pops={} decrease_keys={} fallbacks={}",
        s.heap_pushes, s.heap_pops, s.decrease_keys, s.radix_fallbacks
    );
    rows.push(format!(
        "    {{\"workload\": \"sspa_profiled\", \"settle_ms\": {settle_ms:.2}, \
         \"augment_ms\": {augment_ms:.2}, \"heap_ms\": {heap_ms:.2}, \
         \"heap_pushes\": {}, \"heap_pops\": {}, \"decrease_keys\": {}, \
         \"radix_fallbacks\": {}}}",
        s.heap_pushes, s.heap_pops, s.decrease_keys, s.radix_fallbacks
    ));

    // ---- emit -------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"flow_core\",\n  \"config\": {{\"providers\": {PROVIDERS}, \
         \"customers\": {}, \"provider_cap\": 40, \"quick\": {}, \"host_cores\": {host_cores}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        scale.customers,
        scale.quick,
        rows.join(",\n")
    );
    let out = std::env::var("CCA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_flow.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
