//! Internal timing probe used to calibrate the experiment scale.
//! `cargo run --release -p cca-bench --bin probe [algos...]`

use std::time::Instant;

use cca_core::{ContinuousAssignment, ContinuousConfig, RefineMethod, WorldEvent};
use cca_datagen::{ArrivalProcess, CapacitySpec, SpatialDistribution, StreamEvent, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    let k: u32 = args
        .iter()
        .find_map(|a| a.strip_prefix("k=").map(|v| v.parse().unwrap()))
        .unwrap_or(80);
    let theta: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("theta=").map(|v| v.parse().unwrap()))
        .unwrap_or(0.8);
    let (nq, np) = (100usize, 10_000usize);
    let cfg = WorkloadConfig {
        num_providers: nq,
        num_customers: np,
        capacity: CapacitySpec::Fixed(k),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 2008,
    };
    let t0 = Instant::now();
    let w = cfg.generate();
    eprintln!("gen: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let instance = cca::SpatialAssignment::build(w.providers.clone(), w.customers.clone());
    // Scaled-down trees have so few pages that 1% cannot hold the internal
    // levels the paper's 25-page buffer held; floor it (see EXPERIMENTS.md).
    let floor = 16usize;
    let one_pct = (instance.tree().store().num_pages() as f64 / 100.0).ceil() as usize;
    instance
        .tree()
        .store()
        .set_buffer_capacity(one_pct.max(floor));
    eprintln!(
        "build: {:?}; |Q|={nq} |P|={np} k={k} gamma={}",
        t0.elapsed(),
        instance.gamma()
    );
    let registry = cca::SolverRegistry::with_defaults();
    let configs: Vec<(&str, cca::SolverConfig)> = vec![
        ("ida", cca::SolverConfig::new("ida")),
        ("idag", cca::SolverConfig::new("ida-grouped").group_size(8)),
        ("nia", cca::SolverConfig::new("nia")),
        ("ria", cca::SolverConfig::new("ria").theta(theta)),
        (
            "ca",
            cca::SolverConfig::new("ca")
                .delta(10.0)
                .refine(RefineMethod::NnBased),
        ),
        (
            "sa",
            cca::SolverConfig::new("sa")
                .delta(40.0)
                .refine(RefineMethod::NnBased),
        ),
        ("coreset", cca::SolverConfig::new("coreset")),
        ("da", cca::SolverConfig::new("da")),
    ];
    for (name, config) in configs {
        if !want(name) {
            continue;
        }
        let solver = registry.build(&config).unwrap_or_else(|e| panic!("{e}"));
        let t0 = Instant::now();
        let r = instance.run_solver(&*solver);
        let wall = t0.elapsed();
        eprintln!(
            "  {:<4} cost={:>12.1} |Esub|={:>9} faults={:>7} iters={:>7} dij={:>7} invalid={:>8} cpu={:>8.2?} wall={wall:?}",
            solver.label(),
            r.cost(),
            r.stats.esub_edges,
            r.stats.io.faults,
            r.stats.iterations,
            r.stats.dijkstra_runs,
            r.stats.invalid_paths,
            r.stats.cpu_time,
        );
    }

    // Flow-core probe: profiled cold + warm SSPA on a mid-size instance,
    // with the solve-phase time breakdown and frontier-queue counters.
    if want("flow") {
        use cca::flow::{
            solve_complete_bipartite_profiled, solve_complete_bipartite_warm_ctx, FlowCustomer,
            FlowProvider, SspaCache,
        };
        use cca::geo::Point;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2008);
        let providers: Vec<FlowProvider> = (0..24)
            .map(|_| FlowProvider {
                pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                cap: 40,
            })
            .collect();
        let customers: Vec<FlowCustomer> = (0..800)
            .map(|_| FlowCustomer {
                pos: Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                weight: 1,
            })
            .collect();
        let t0 = Instant::now();
        let (asg, s) = solve_complete_bipartite_profiled(&providers, &customers);
        let wall = t0.elapsed();
        eprintln!(
            "  flow cold  cost={:>10.1} wall={wall:?} settle={:.2?} augment={:.2?} heap={:.2?}",
            asg.cost,
            std::time::Duration::from_nanos(s.settle_ns),
            std::time::Duration::from_nanos(s.augment_ns),
            std::time::Duration::from_nanos(s.heap_ns),
        );
        eprintln!(
            "  flow cold  settled={} pushes={} pops={} decrease_keys={} radix_fallbacks={}",
            s.settled, s.heap_pushes, s.heap_pops, s.decrease_keys, s.radix_fallbacks,
        );
        let cache = SspaCache::new();
        solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
            .expect("no context, no abort");
        let t0 = Instant::now();
        let (warm, s) =
            solve_complete_bipartite_warm_ctx(&providers, &customers, None, Some(&cache))
                .expect("no context, no abort");
        eprintln!(
            "  flow warm  cost={:>10.1} wall={:?} settled={} warm_units={} settle={:.2?} augment={:.2?}",
            warm.cost,
            t0.elapsed(),
            s.settled,
            s.warm_units,
            std::time::Duration::from_nanos(s.settle_ns),
            std::time::Duration::from_nanos(s.augment_ns),
        );
    }

    // Dynamic-workload probe: events/sec through the continuous engine on a
    // mixed stream, with the repair-tier breakdown.
    if want("dyn") {
        let mut stream = ArrivalProcess::new(&w, 2008);
        let t0 = Instant::now();
        let mut engine = ContinuousAssignment::build(
            w.providers.clone(),
            w.customers.clone(),
            ContinuousConfig::default(),
        );
        eprintln!("  dyn  build+initial solve: {:?}", t0.elapsed());
        let events = 2_000u64;
        let t0 = Instant::now();
        for _ in 0..events {
            let ev = match stream.next_event() {
                StreamEvent::CustomerArrive { id, pos } => WorldEvent::CustomerArrive { id, pos },
                StreamEvent::CustomerDepart { id, .. } => WorldEvent::CustomerDepart { id },
                StreamEvent::ProviderCapacityDelta { index, delta } => {
                    WorldEvent::ProviderCapacityDelta { index, delta }
                }
                StreamEvent::ProviderMove { index, to } => WorldEvent::ProviderMove { index, to },
            };
            engine.apply(ev, None);
        }
        let wall = t0.elapsed();
        let s = engine.stats();
        eprintln!(
            "  dyn  {events} events in {wall:?} ({:.0} ev/s) local={} expand={} full={} warm={} evicted={} deficit={}",
            events as f64 / wall.as_secs_f64(),
            s.local_repairs,
            s.expansions,
            s.full_resolves,
            s.warm_full_resolves,
            s.evicted,
            engine.deficit(),
        );
    }
}
