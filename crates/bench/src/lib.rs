//! Benchmark harness for reproducing the paper's evaluation (§5).
//!
//! Every figure of the evaluation has a bench target (`fig08` … `fig18`)
//! that regenerates the corresponding table/series; `cargo bench` runs them
//! all. Absolute numbers differ from the paper (different hardware, a
//! synthetic road map, and a reduced default scale — see EXPERIMENTS.md);
//! the harness reports the same measured quantities (`|Esub|`, CPU time,
//! charged I/O time, quality ratio) so the *shapes* can be compared
//! directly.
//!
//! Scale: every experiment honours the `CCA_SCALE` environment variable
//! (default 0.1 = one tenth of the paper's sizes, preserving the governing
//! ratio `k·|Q|/|P|`).

use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{SolverConfig, SolverRegistry, SpatialAssignment};

/// Experiment scale relative to the paper's Table 2 sizes.
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub f64);

impl Scale {
    /// Reads `CCA_SCALE` (default 0.1). Values are clamped to (0, 1].
    pub fn from_env() -> Self {
        let raw = std::env::var("CCA_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.1);
        Scale(raw.clamp(1e-3, 1.0))
    }

    /// Scales a paper-sized count.
    pub fn count(&self, paper: usize) -> usize {
        ((paper as f64 * self.0).round() as usize).max(1)
    }

    /// RIA's θ, fine-tuned like the paper did for its scale (§5.1 fixes 0.8
    /// at |P| = 100 K; sparser scaled instances need proportionally wider
    /// rings — θ ∝ 1/√density).
    pub fn tuned_theta(&self) -> f64 {
        1.6 / self.0.sqrt()
    }
}

/// Buffer floor in pages: the paper's 1 % buffer (≈25 pages at |P| = 100 K)
/// holds the R-tree's internal levels; scaled-down trees need an absolute
/// floor to stay in the same caching regime.
pub const BUFFER_FLOOR_PAGES: usize = 16;

/// Builds the experiment instance with the paper's storage settings plus
/// the scaled buffer floor.
pub fn build_instance(cfg: &WorkloadConfig) -> SpatialAssignment {
    let w = cfg.generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let one_pct = (instance.tree().store().num_pages() as f64 / 100.0).ceil() as usize;
    instance
        .tree()
        .store()
        .set_buffer_capacity(one_pct.max(BUFFER_FLOOR_PAGES));
    instance
}

/// Default workload config at the given scale (Table 2 defaults).
pub fn default_config(scale: Scale) -> WorkloadConfig {
    WorkloadConfig {
        num_providers: scale.count(1000),
        num_customers: scale.count(100_000),
        capacity: CapacitySpec::Fixed(80),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 2008,
    }
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Series name (algorithm label).
    pub series: String,
    /// X-axis value (k, |Q|, |P|, δ, distribution combo, …).
    pub x: String,
    pub cost: f64,
    pub esub: u64,
    pub faults: u64,
    pub cpu_s: f64,
    pub io_s: f64,
    pub wall_s: f64,
}

impl Row {
    /// The paper's "total time": CPU + charged I/O.
    pub fn total_s(&self) -> f64 {
        self.cpu_s + self.io_s
    }
}

/// Runs one solver config on the instance (through the registry-backed
/// trait pipeline) and collects a row.
pub fn measure(instance: &SpatialAssignment, config: &SolverConfig, x: impl ToString) -> Row {
    let solver = SolverRegistry::with_defaults()
        .build(config)
        .unwrap_or_else(|e| panic!("{e}"));
    let t0 = Instant::now();
    let r = instance.run_solver(&*solver);
    let wall = t0.elapsed();
    r.validate()
        .expect("harness runs must produce valid matchings");
    Row {
        series: solver.label(),
        x: x.to_string(),
        cost: r.cost(),
        esub: r.stats.esub_edges,
        faults: r.stats.io.faults,
        cpu_s: r.stats.cpu_time.as_secs_f64(),
        io_s: r.stats.io_time_s(),
        wall_s: wall.as_secs_f64(),
    }
}

/// Prints a figure header with the effective parameters.
pub fn header(fig: &str, what: &str, params: &str) {
    println!("\n================================================================");
    println!("{fig}: {what}");
    println!("  paper: U et al., SIGMOD 2008, §5 — {params}");
    println!("================================================================");
}

/// Prints rows as an exact-experiment table (|Esub| + time split).
pub fn print_exact_table(rows: &[Row]) {
    println!(
        "{:<8} {:<10} {:>12} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "x", "algo", "|Esub|", "cost", "faults", "cpu(s)", "io(s)", "total(s)"
    );
    for r in rows {
        println!(
            "{:<8} {:<10} {:>12} {:>14.1} {:>10} {:>10.2} {:>10.1} {:>10.1}",
            r.x,
            r.series,
            r.esub,
            r.cost,
            r.faults,
            r.cpu_s,
            r.io_s,
            r.total_s()
        );
    }
}

/// Prints rows as an approximate-experiment table (quality vs the exact
/// reference cost supplied per x-value).
pub fn print_approx_table(rows: &[Row], exact_cost: impl Fn(&str) -> f64) {
    println!(
        "{:<8} {:<10} {:>14} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "x", "algo", "cost", "quality", "faults", "cpu(s)", "io(s)", "total(s)"
    );
    for r in rows {
        let base = exact_cost(&r.x);
        println!(
            "{:<8} {:<10} {:>14.1} {:>9.4} {:>10} {:>10.2} {:>10.1} {:>10.1}",
            r.x,
            r.series,
            r.cost,
            r.cost / base,
            r.faults,
            r.cpu_s,
            r.io_s,
            r.total_s()
        );
    }
}

/// Shape-check helper: asserts and reports an expected dominance relation,
/// e.g. "IDA explores no more edges than NIA".
pub fn shape_check(label: &str, ok: bool) {
    println!("shape[{}] {label}", if ok { "ok " } else { "MISMATCH" });
}

/// The five capacity values of Figures 8/9/15 (Table 2 range).
pub const K_RANGE: [u32; 5] = [20, 40, 80, 160, 320];

/// The mixed-capacity ranges of Figure 12.
pub const MIXED_K_RANGES: [(u32, u32); 5] = [(10, 30), (20, 60), (40, 120), (80, 240), (160, 480)];

/// The δ values of Figure 14.
pub const DELTA_RANGE: [f64; 5] = [10.0, 20.0, 40.0, 80.0, 160.0];

/// The four distribution combinations of Figures 13/18.
pub const DIST_COMBOS: [(SpatialDistribution, SpatialDistribution); 4] = [
    (SpatialDistribution::Uniform, SpatialDistribution::Uniform),
    (SpatialDistribution::Uniform, SpatialDistribution::Clustered),
    (SpatialDistribution::Clustered, SpatialDistribution::Uniform),
    (
        SpatialDistribution::Clustered,
        SpatialDistribution::Clustered,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_and_clamps() {
        assert_eq!(Scale(0.1).count(1000), 100);
        assert_eq!(Scale(0.1).count(100_000), 10_000);
        assert_eq!(Scale(1.0).count(250), 250);
        assert!(Scale(0.04).count(5) >= 1);
    }

    #[test]
    fn theta_matches_paper_at_full_scale() {
        // At scale 1 the tuned θ is within 2x of the paper's 0.8.
        let t = Scale(1.0).tuned_theta();
        assert!((0.8..=1.6).contains(&t), "theta {t}");
    }

    #[test]
    fn measure_produces_consistent_row() {
        let cfg = WorkloadConfig {
            num_providers: 5,
            num_customers: 200,
            capacity: CapacitySpec::Fixed(10),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 1,
        };
        let instance = build_instance(&cfg);
        let row = measure(&instance, &SolverConfig::new("ida"), 10);
        assert_eq!(row.series, "IDA");
        assert_eq!(row.x, "10");
        assert!(row.cost > 0.0);
        assert!((row.total_s() - (row.cpu_s + row.io_s)).abs() < 1e-12);
    }
}
