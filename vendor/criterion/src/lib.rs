//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's microbenchmarks use
//! (`criterion_group!` / `criterion_main!`, [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! and `iter_batched`) with straightforward wall-clock timing: a short
//! warm-up, then `sample_size` timed samples, reporting the mean per
//! iteration. No statistics engine, no HTML reports — numbers land on
//! stdout, which is all the figure-level harness needs offline.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility (every batch holds one input here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier combining a function name and a parameter, as in
/// `BenchmarkId::new("bulk_load", n)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.to_string(), self.sample_size, f);
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    /// Iterations folded into each recorded sample.
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, amortised over enough iterations to dampen clock noise.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: aim for samples of at least ~1 ms each.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 1000);
        self.iters_per_sample = iters as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(t0.elapsed());
    }

    /// Times `routine` only, regenerating its input with `setup` each
    /// iteration.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed());
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<48} mean {:>12} min {:>12} ({} samples)",
        human(mean),
        human(min),
        per_iter.len()
    );
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion_group!`, both the struct-ish and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| black_box(v * 2), BatchSize::SmallInput);
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1)));
    }
}
