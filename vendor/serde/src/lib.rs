//! Offline stand-in for `serde` (+ a built-in JSON codec).
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! persistence layer the workspace gates behind its `serde` feature: a
//! [`Serialize`] / [`Deserialize`] trait pair over a small self-describing
//! [`Value`] model, plus a [`json`] reader/writer. Types implement the
//! traits by hand (there is no proc-macro derive here); the impls are
//! field-per-field maps, so swapping in the real `serde` + `serde_json`
//! later is mechanical.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A self-describing value: the data model every serializable type maps
/// into. Mirrors the JSON data model with integers kept exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a map value from `(key, value)` pairs.
    pub fn map<const N: usize>(fields: [(&str, Value); N]) -> Value {
        Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(m) => m
                .get(key)
                .ok_or_else(|| Error(format!("missing field `{key}`"))),
            _ => Err(Error(format!("expected map with field `{key}`"))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    _ => Err(Error(format!("expected unsigned integer, got {v:?}"))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range"))),
                    _ => Err(Error(format!("expected integer, got {v:?}"))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error(format!("expected 2-tuple, got {v:?}"))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::map([
            ("secs", Value::U64(self.as_secs())),
            ("nanos", Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.get("secs")?)?;
        let nanos = u32::from_value(v.get("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

pub mod json {
    //! Compact JSON writer and recursive-descent reader for [`Value`].

    use super::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;

    /// Serializes `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out);
        out
    }

    /// Parses JSON and deserializes into `T`.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parses JSON into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn write_value(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            }
            Value::Str(s) => write_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Map(m) => {
                out.push('{');
                for (i, (k, item)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    write_value(item, out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => self.seq(),
                Some(b'{') => self.map(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error("unterminated string".into())),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self
                            .peek()
                            .ok_or_else(|| Error("unterminated escape".into()))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error("truncated \\u escape".into()))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error("bad \\u escape".into()))?,
                                    16,
                                )
                                .map_err(|_| Error("bad \\u escape".into()))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("bad \\u code point".into()))?,
                                );
                            }
                            other => {
                                return Err(Error(format!("unknown escape `\\{}`", other as char)))
                            }
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error("invalid UTF-8".into()))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if float {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error(format!("bad number `{text}`")))
            } else if text.starts_with('-') {
                text.parse::<i64>()
                    .map(Value::I64)
                    .map_err(|_| Error(format!("bad number `{text}`")))
            } else {
                text.parse::<u64>()
                    .map(Value::U64)
                    .map_err(|_| Error(format!("bad number `{text}`")))
            }
        }

        fn seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
                }
            }
        }

        fn map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut m = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(m));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                m.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(m));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(json::from_str::<u64>(&json::to_string(&v)).unwrap(), v);
        }
        for v in [-5i64, 0, i64::MAX] {
            assert_eq!(json::from_str::<i64>(&json::to_string(&v)).unwrap(), v);
        }
        for v in [0.0f64, -1.5, 1e-12, 123456.789] {
            assert_eq!(json::from_str::<f64>(&json::to_string(&v)).unwrap(), v);
        }
        assert!(json::from_str::<bool>("true").unwrap());
        let s = "quote \" slash \\ newline \n done".to_string();
        assert_eq!(json::from_str::<String>(&json::to_string(&s)).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, -4.0)];
        let json = json::to_string(&v);
        assert_eq!(json::from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let d = Duration::new(7, 123_456_789);
        assert_eq!(json::from_str::<Duration>(&json::to_string(&d)).unwrap(), d);
        assert_eq!(json::from_str::<Option<u32>>("null").unwrap(), None::<u32>);
    }

    #[test]
    fn map_values_parse_with_whitespace() {
        let v = json::parse(" { \"a\" : [ 1 , 2.0 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(v.get("b").unwrap(), &Value::Str("x".into()));
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
    }
}
