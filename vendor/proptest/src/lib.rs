//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`Just`], [`any`], [`prop_oneof!`], [`collection::vec`] and the
//! `prop_assert*` macros. No shrinking: a failing case panics with the
//! sampled values still recoverable from the deterministic seed.
//!
//! Unlike the real crate, case generation is *deterministic*: the RNG for
//! each test function is seeded from the test's name and the case index,
//! so CI failures always reproduce locally.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies; a thin wrapper kept so the public API
/// does not leak the vendored `rand`.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-(test, case) RNG.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | 0x9e37)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Types with a canonical "arbitrary" strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One boxed alternative of a [`Union`].
pub type Arm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternative strategies; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Arm<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Arm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    pub fn arm<S>(s: S) -> Arm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(move |rng| s.sample(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.arms.len());
        (self.arms[idx])(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]. Implemented for integer ranges so
    /// untyped literals like `1..200` (which default to `i32`) work exactly
    /// as they do with the real proptest's `SizeRange`.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    macro_rules! impl_size_range {
        ($($t:ty),*) => {$(
            impl SizeRange for Range<$t> {
                fn sample_len(&self, rng: &mut TestRng) -> usize {
                    rng.random_range(self.clone()) as usize
                }
            }
            impl SizeRange for RangeInclusive<$t> {
                fn sample_len(&self, rng: &mut TestRng) -> usize {
                    rng.random_range(self.clone()) as usize
                }
            }
        )*};
    }

    impl_size_range!(i32, u32, usize);

    /// Strategy for `Vec<S::Value>` with a range-driven length.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `proptest::collection::vec(elem, lens)`.
    pub fn vec<S, L>(elem: S, len: L) -> VecStrategy<S, L>
    where
        S: Strategy,
        L: SizeRange,
    {
        VecStrategy { elem, len }
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        L: SizeRange,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($s)),+])
    };
}

/// The `proptest!` test-definition macro: each contained function becomes a
/// `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u32),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0u32..10, -5i32..5)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn oneof_vec_and_map(ops in crate::collection::vec(
            prop_oneof![(0u32..8).prop_map(Op::A), Just(Op::B)], 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for op in &ops {
                match op {
                    Op::A(v) => prop_assert!(*v < 8),
                    Op::B => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        for _ in 0..10 {
            prop_assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
        let mut c = crate::TestRng::for_case("t", 4);
        prop_assert_ne!(
            (0..10).map(|_| s.sample(&mut a)).collect::<Vec<_>>(),
            (0..10).map(|_| s.sample(&mut c)).collect::<Vec<_>>()
        );
    }
}
