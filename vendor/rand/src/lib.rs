//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset* of `rand` 0.9 that its code actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`] over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! workload synthesis and property tests, and fully deterministic per seed
//! (which is all the reproduction relies on; no test encodes the byte
//! stream of the real `StdRng`).
//!
//! Swapping back to the real crate is a one-line `Cargo.toml` change: the
//! names and signatures match.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-high rejection-free bounded sample: uniform in `[0, span)`.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(bounded(rng, span))) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + i128::from(bounded(rng, span))) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Rounding may land exactly on `end`; clamp into the half-open
                // interval like the real sampler does.
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..10).map(|_| a.random_range(0..100u64)).collect();
        let sc: Vec<u64> = (0..10).map(|_| c.random_range(0..100u64)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.random_range(1u32..=5);
            assert!((1..=5).contains(&v));
            let f = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.random_range(-8i32..8);
            assert!((-8..8).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
